// Property-style and oracle tests.
//
//  * MatlabOracle: a literal transliteration of the paper's published
//    MATLAB sim_1901 (kept verbatim as a reference oracle, State/BPC/
//    next_state arrays and all) must agree statistically with the
//    framework's entity-based simulator across seeds and configurations.
//  * Randomized convergence-layer round trips: frames of arbitrary sizes
//    through Segmenter/Reassembler with random corruption patterns.
//  * Exact-chain sweep: the stationary solver matches long simulations
//    for a family of small configurations.
#include <random>

#include <gtest/gtest.h>

#include "frames/pb.hpp"
#include "analysis/exact_chain.hpp"
#include "sim/sim_1901.hpp"
#include "util/stats.hpp"

namespace plc {
namespace {

// --- The MATLAB oracle -------------------------------------------------------------

struct OracleResult {
  double collision_probability;
  double normalized_throughput;
};

/// Line-by-line port of the paper's published MATLAB function (§4.2).
OracleResult matlab_sim_1901(int n, double sim_time, double tc, double ts,
                             double frame_length,
                             const std::vector<int>& cw,
                             const std::vector<int>& dc,
                             std::uint64_t seed) {
  const double slot = 35.84;
  std::mt19937_64 rng(seed);
  const auto unidrnd = [&rng](int m) {
    return std::uniform_int_distribution<int>(1, m)(rng);
  };
  const int m = static_cast<int>(cw.size());
  std::vector<int> state(static_cast<std::size_t>(n), 0);
  std::vector<int> bpc(static_cast<std::size_t>(n), 0);
  std::vector<int> bc(static_cast<std::size_t>(n), 0);
  std::vector<int> dcount(static_cast<std::size_t>(n), 0);
  std::vector<int> next_state(static_cast<std::size_t>(n), 2);
  double t = 0.0;
  long long collisions = 0;
  long long succ = 0;
  while (t <= sim_time) {
    for (int i = 0; i < n; ++i) {
      const auto iu = static_cast<std::size_t>(i);
      if (state[iu] == 0) {
        if (bpc[iu] == 0 || bc[iu] == 0 || dcount[iu] == 0) {
          const int stage = bpc[iu] < m ? bpc[iu] : m - 1;
          dcount[iu] = dc[static_cast<std::size_t>(stage)];
          bc[iu] = unidrnd(cw[static_cast<std::size_t>(stage)]) - 1;
          bpc[iu] = bpc[iu] + 1;
        } else {
          --bc[iu];
          --dcount[iu];
        }
        next_state[iu] = bc[iu] == 0 ? 1 : 2;
      } else if (state[iu] == 2) {
        --bc[iu];
        next_state[iu] = bc[iu] == 0 ? 1 : 2;
      }
    }
    int counter = 0;
    for (int i = 0; i < n; ++i) {
      if (next_state[static_cast<std::size_t>(i)] == 1) ++counter;
    }
    if (counter == 0) {
      t += slot;
    } else if (counter == 1) {
      ++succ;
      for (int i = 0; i < n; ++i) {
        const auto iu = static_cast<std::size_t>(i);
        if (next_state[iu] == 1) bpc[iu] = 0;
        next_state[iu] = 0;
      }
      t += ts;
    } else {
      collisions += counter;
      for (int i = 0; i < n; ++i) {
        next_state[static_cast<std::size_t>(i)] = 0;
      }
      t += tc;
    }
    state = next_state;
  }
  OracleResult result;
  result.collision_probability =
      static_cast<double>(collisions) /
      static_cast<double>(collisions + succ);
  result.normalized_throughput =
      static_cast<double>(succ) * frame_length / t;
  return result;
}

struct OracleCase {
  const char* name;
  int n;
  std::vector<int> cw;
  std::vector<int> dc;
};

class MatlabOracle : public ::testing::TestWithParam<OracleCase> {};

TEST_P(MatlabOracle, FrameworkAgreesWithLiteralPort) {
  const OracleCase& test_case = GetParam();
  // Average several independent runs of both implementations (different
  // RNGs, so agreement is statistical).
  util::RunningStats oracle_cp;
  util::RunningStats ours_cp;
  util::RunningStats oracle_thr;
  util::RunningStats ours_thr;
  for (int rep = 0; rep < 4; ++rep) {
    const OracleResult oracle = matlab_sim_1901(
        test_case.n, 3e7, 2920.64, 2542.64, 2050.0, test_case.cw,
        test_case.dc, 1000 + static_cast<std::uint64_t>(rep));
    const sim::Sim1901Result ours = sim::sim_1901(
        test_case.n, 3e7, 2920.64, 2542.64, 2050.0, test_case.cw,
        test_case.dc, 2000 + static_cast<std::uint64_t>(rep));
    oracle_cp.add(oracle.collision_probability);
    ours_cp.add(ours.collision_probability);
    oracle_thr.add(oracle.normalized_throughput);
    ours_thr.add(ours.normalized_throughput);
  }
  EXPECT_NEAR(oracle_cp.mean(), ours_cp.mean(), 0.012) << test_case.name;
  EXPECT_NEAR(oracle_thr.mean(), ours_thr.mean(), 0.012) << test_case.name;
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, MatlabOracle,
    ::testing::Values(
        OracleCase{"ca1_n2", 2, {8, 16, 32, 64}, {0, 1, 3, 15}},
        OracleCase{"ca1_n5", 5, {8, 16, 32, 64}, {0, 1, 3, 15}},
        OracleCase{"ca1_n10", 10, {8, 16, 32, 64}, {0, 1, 3, 15}},
        OracleCase{"ca3_n4", 4, {8, 16, 16, 32}, {0, 1, 3, 15}},
        OracleCase{"single_stage_n6", 6, {32}, {2}},
        OracleCase{"two_stage_n3", 3, {4, 64}, {0, 7}}),
    [](const ::testing::TestParamInfo<OracleCase>& info) {
      return info.param.name;
    });

// --- Randomized convergence-layer round trips ---------------------------------------

class SegmentationFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SegmentationFuzz, RandomFramesSurviveRandomCorruption) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  frames::Segmenter segmenter;
  std::vector<frames::EthernetFrame> sent;
  const int frame_count =
      std::uniform_int_distribution<int>(1, 60)(rng);
  for (int i = 0; i < frame_count; ++i) {
    frames::EthernetFrame frame;
    frame.destination = frames::MacAddress::for_station(2);
    frame.source = frames::MacAddress::for_station(1);
    frame.ether_type = frames::kEtherTypeIpv4;
    const int size = std::uniform_int_distribution<int>(0, 1500)(rng);
    frame.payload.resize(static_cast<std::size_t>(size));
    for (auto& byte : frame.payload) {
      byte = static_cast<std::uint8_t>(rng());
    }
    segmenter.push_frame(frame);
    sent.push_back(std::move(frame));
  }
  auto pbs = segmenter.pop_pbs(100000, /*flush=*/true);
  // Corrupt a random subset of blocks.
  const double corruption_rate =
      std::uniform_real_distribution<double>(0.0, 0.3)(rng);
  int corrupted = 0;
  for (auto& pb : pbs) {
    if (std::uniform_real_distribution<double>(0.0, 1.0)(rng) <
        corruption_rate) {
      pb.received_ok = false;
      ++corrupted;
    }
  }
  frames::Reassembler reassembler;
  std::vector<frames::EthernetFrame> received;
  for (const auto& pb : pbs) {
    for (auto& frame : reassembler.push_pb(pb)) {
      received.push_back(std::move(frame));
    }
  }
  // Conservation: every frame is either delivered intact or dropped.
  EXPECT_EQ(reassembler.frames_delivered() + reassembler.frames_dropped(),
            static_cast<std::int64_t>(sent.size()));
  if (corrupted == 0) {
    EXPECT_EQ(received.size(), sent.size());
  }
  // Delivered frames arrive in order and intact: match them against the
  // sent sequence with a forward scan.
  std::size_t cursor = 0;
  for (const auto& frame : received) {
    bool found = false;
    while (cursor < sent.size()) {
      const auto& candidate = sent[cursor++];
      // Compare against the padded payload the wire actually carried.
      const auto wire = frames::EthernetFrame::deserialize(
          candidate.serialize());
      if (wire.payload == frame.payload) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "out-of-order or corrupted delivery";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentationFuzz,
                         ::testing::Range(1, 17));

// --- Exact-chain sweep ------------------------------------------------------------------

struct ChainCase {
  const char* name;
  std::vector<int> cw;
  std::vector<int> dc;
};

class ExactChainSweep : public ::testing::TestWithParam<ChainCase> {};

TEST_P(ExactChainSweep, StationaryChainMatchesLongSimulation) {
  const ChainCase& test_case = GetParam();
  mac::BackoffConfig config;
  config.cw = test_case.cw;
  config.dc = test_case.dc;
  const analysis::ExactPairResult exact =
      analysis::solve_exact_pair(config);
  const sim::Sim1901Result simulated = sim::sim_1901(
      2, 3e8, 2920.64, 2542.64, 2050.0, config.cw, config.dc, 77);
  EXPECT_NEAR(exact.collision_probability,
              simulated.collision_probability, 0.006)
      << test_case.name;
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, ExactChainSweep,
    ::testing::Values(ChainCase{"tiny", {2, 4}, {0, 1}},
                      ChainCase{"single", {8}, {1}},
                      ChainCase{"no_defer", {4, 8}, {3, 7}},
                      ChainCase{"steep", {2, 32}, {0, 3}},
                      ChainCase{"three_stage", {4, 8, 16}, {0, 1, 3}}),
    [](const ::testing::TestParamInfo<ChainCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace plc
