// plc::store — the content-addressed result cache, and the util
// primitives underneath it (hash128, atomic file writes, raw-moment
// stats round trips).
//
// The corruption suite is the store's core promise: a damaged entry —
// flipped bit, truncation, stale epoch, renamed file — is always a miss
// plus a quarantine, never a crash and never a stale hit. The property
// tests pin the other promise: the key is a pure function of content,
// invariant under JSON field order, whitespace, and --jobs.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "scenario/run.hpp"
#include "scenario/spec.hpp"
#include "store/result_store.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/hash.hpp"
#include "util/stats.hpp"

namespace {

using namespace plc;
namespace fs = std::filesystem;

/// Fresh directory under the test temp root, removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& tag)
      : path(fs::path(::testing::TempDir()) /
             ("plc_store_test_" + tag + "_" +
              std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
  fs::path path;
};

std::string slurp(const std::string& path) { return util::read_file(path); }

void spill(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

// ---------------------------------------------------------------------------
// util::hash128

// Known-answer vectors generated once from this implementation and
// pinned: any platform, compiler, or refactor that changes a digest
// silently orphans every store on disk, so it must fail loudly here.
TEST(Hash128, KnownAnswers) {
  struct Vector {
    const char* input;
    const char* hex;
  };
  const Vector vectors[] = {
      {"", "00000000000000000000000000000000"},
      {"a", "85555565f6597889e6b53a48510e895a"},
      {"hello, world", "342fac623a5ebc8e4cdcbc079642414d"},
      {"plc-store/1\nepoch=1\nleg=sim/CA1\nrep=0\npoint={}\n",
       "d9c64ff29fcb9f799d8138f8839de17b"},
  };
  for (const Vector& v : vectors) {
    EXPECT_EQ(util::hash128(v.input).to_hex(), v.hex) << v.input;
  }
  // A different seed is a different hash family.
  EXPECT_EQ(util::hash128("hello, world", 0x706c632d63686b73ULL).to_hex(),
            "63c5bca56a644fa17bb9ce4c72310b4d");
}

TEST(Hash128, HexRoundTripAndInequality) {
  const util::Hash128 h = util::hash128("round trip me");
  EXPECT_EQ(util::Hash128::from_hex(h.to_hex()), h);
  EXPECT_THROW(util::Hash128::from_hex("not hex"), plc::Error);
  EXPECT_THROW(util::Hash128::from_hex("abcd"), plc::Error);
  EXPECT_NE(util::hash128("a"), util::hash128("b"));
  EXPECT_NE(util::hash128("ab"), util::hash128("a"));
}

// ---------------------------------------------------------------------------
// util::fs

TEST(AtomicFile, RoundTripAndOverwrite) {
  TempDir dir("fs");
  const std::string path = dir.str() + "/nested/deep/file.txt";
  util::write_file_atomic(path, "first", /*create_dirs=*/true);
  EXPECT_EQ(slurp(path), "first");
  util::write_file_atomic(path, "second");
  EXPECT_EQ(slurp(path), "second");
  // No temp droppings left behind.
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir.str() + "/nested/deep")) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST(AtomicFile, MissingDirsFailWithoutCreateFlag) {
  TempDir dir("fs_nodirs");
  EXPECT_THROW(
      util::write_file_atomic(dir.str() + "/absent/sub/file.txt", "x"),
      plc::Error);
  EXPECT_THROW(util::read_file(dir.str() + "/no_such_file"), plc::Error);
}

// ---------------------------------------------------------------------------
// util::RunningStats raw-moment round trip

TEST(RunningStats, FromMomentsIsBitwiseRoundTrip) {
  util::RunningStats stats;
  for (const double v : {0.25, 1.5, -3.75, 100.0, 0.1}) stats.add(v);
  const util::RunningStats copy = util::RunningStats::from_moments(
      stats.count(), stats.mean(), stats.m2(), stats.min(), stats.max(),
      stats.sum());
  EXPECT_EQ(copy.count(), stats.count());
  EXPECT_EQ(copy.mean(), stats.mean());
  EXPECT_EQ(copy.m2(), stats.m2());
  EXPECT_EQ(copy.min(), stats.min());
  EXPECT_EQ(copy.max(), stats.max());
  EXPECT_EQ(copy.sum(), stats.sum());
  EXPECT_EQ(copy.stddev(), stats.stddev());
}

// ---------------------------------------------------------------------------
// Key derivation

TEST(StoreKey, InvariantUnderFieldOrderAndWhitespace) {
  const store::Key a =
      store::make_key("sim/CA1", R"({"stations": 5,"seed": "0x1901"})", 0);
  const store::Key b =
      store::make_key("sim/CA1", R"({"seed":"0x1901",  "stations":5})", 0);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.point, b.point);  // Both canonicalized to the same bytes.
}

TEST(StoreKey, EveryCoordinateChangesTheDigest) {
  const std::string point = R"({"stations": 5})";
  const store::Key base = store::make_key("sim/CA1", point, 0);
  EXPECT_NE(store::make_key("sim/CA2", point, 0).digest, base.digest);
  EXPECT_NE(store::make_key("sim/CA1", point, 1).digest, base.digest);
  EXPECT_NE(store::make_key("sim/CA1", R"({"stations": 6})", 0).digest,
            base.digest);
}

TEST(StoreKey, RejectsMalformedPointJson) {
  EXPECT_THROW(store::make_key("sim/CA1", "{not json", 0), plc::Error);
}

// ---------------------------------------------------------------------------
// Store round trip

store::Key test_key(int rep = 0) {
  return store::make_key("test/leg", R"({"stations": 3,"duration_ns": 60000000000})", rep);
}

TEST(ResultStore, PublishThenLookupRoundTrips) {
  TempDir dir("roundtrip");
  store::ResultStore store(dir.str());
  const store::Key key = test_key();

  EXPECT_FALSE(store.lookup(key).has_value());  // Cold miss.
  store.publish(key, R"({"throughput": 0.75,"events": 60000000000})");
  const auto payload = store.lookup(key);
  ASSERT_TRUE(payload.has_value());
  EXPECT_DOUBLE_EQ(payload->find("throughput")->number, 0.75);
  EXPECT_DOUBLE_EQ(payload->find("events")->number, 6e10);

  const store::Counters counters = store.counters();
  EXPECT_EQ(counters.hits, 1);
  EXPECT_EQ(counters.misses, 1);
  EXPECT_EQ(counters.publishes, 1);
  EXPECT_EQ(counters.quarantined, 0);
  EXPECT_GT(counters.bytes_written, 0);
  EXPECT_GT(counters.bytes_read, 0);
}

TEST(ResultStore, RepublishIdenticalContentIsIdempotent) {
  TempDir dir("republish");
  store::ResultStore store(dir.str());
  const store::Key key = test_key();
  store.publish(key, R"({"v": 1})");
  const std::string first = slurp(store.entry_path(key));
  store.publish(key, R"({"v": 1})");
  EXPECT_EQ(slurp(store.entry_path(key)), first);  // Last writer, same bytes.
}

TEST(ResultStore, ExportMetricsRegistersCounters) {
  TempDir dir("metrics");
  store::ResultStore store(dir.str());
  store.publish(test_key(), R"({"v": 1})");
  store.lookup(test_key());
  obs::Registry registry;
  store.export_metrics(registry);
  const obs::Snapshot snapshot = registry.snapshot();
  ASSERT_NE(snapshot.find("store.hits"), nullptr);
  EXPECT_DOUBLE_EQ(snapshot.find("store.hits")->value, 1.0);
  EXPECT_DOUBLE_EQ(snapshot.find("store.publishes")->value, 1.0);
  EXPECT_NE(snapshot.find("store.bytes_written"), nullptr);
}

// ---------------------------------------------------------------------------
// Corruption handling: miss + quarantine, never a crash, never a stale hit.

TEST(StoreCorruption, BitFlippedPayloadIsQuarantinedMiss) {
  TempDir dir("bitflip");
  store::ResultStore store(dir.str());
  const store::Key key = test_key();
  store.publish(key, R"({"throughput": 0.75})");

  // Flip one digit inside the payload value.
  std::string text = slurp(store.entry_path(key));
  const auto pos = text.find("0.75");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 2] = '9';
  spill(store.entry_path(key), text);

  EXPECT_FALSE(store.lookup(key).has_value());
  EXPECT_EQ(store.counters().quarantined, 1);
  EXPECT_FALSE(fs::exists(store.entry_path(key)));  // Moved out of the way.
  EXPECT_TRUE(fs::exists(fs::path(store.quarantine_dir()) /
                         fs::path(store.entry_path(key)).filename()));
  // The next lookup is a clean miss; a re-publish heals the entry.
  EXPECT_FALSE(store.lookup(key).has_value());
  store.publish(key, R"({"throughput": 0.75})");
  EXPECT_TRUE(store.lookup(key).has_value());
}

TEST(StoreCorruption, TruncatedEntryIsQuarantinedMiss) {
  TempDir dir("truncate");
  store::ResultStore store(dir.str());
  const store::Key key = test_key();
  store.publish(key, R"({"throughput": 0.75})");
  const std::string text = slurp(store.entry_path(key));
  spill(store.entry_path(key), text.substr(0, text.size() / 2));
  EXPECT_FALSE(store.lookup(key).has_value());
  EXPECT_EQ(store.counters().quarantined, 1);
  EXPECT_FALSE(fs::exists(store.entry_path(key)));
}

TEST(StoreCorruption, WrongEpochIsQuarantinedMiss) {
  TempDir dir("epoch");
  store::ResultStore store(dir.str());
  const store::Key key = test_key();
  store.publish(key, R"({"throughput": 0.75})");
  std::string text = slurp(store.entry_path(key));
  const std::string needle = "\"epoch\": 1";
  const auto pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, needle.size(), "\"epoch\": 999");
  spill(store.entry_path(key), text);
  EXPECT_FALSE(store.lookup(key).has_value());
  EXPECT_EQ(store.counters().quarantined, 1);
}

TEST(StoreCorruption, TamperedKeyMaterialIsQuarantinedMiss) {
  TempDir dir("tamper");
  store::ResultStore store(dir.str());
  const store::Key key = test_key();
  store.publish(key, R"({"throughput": 0.75})");
  // Re-point the echoed leg: the re-derived digest no longer matches
  // the filename or the echoed key, even though the JSON stays valid.
  std::string text = slurp(store.entry_path(key));
  const std::string needle = "\"leg\": \"test/leg\"";
  const auto pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, needle.size(), "\"leg\": \"test/gel\"");
  spill(store.entry_path(key), text);
  EXPECT_FALSE(store.lookup(key).has_value());
  EXPECT_EQ(store.counters().quarantined, 1);
}

TEST(StoreCorruption, GarbageBytesAreQuarantinedMiss) {
  TempDir dir("garbage");
  store::ResultStore store(dir.str());
  const store::Key key = test_key();
  store.publish(key, R"({"throughput": 0.75})");
  spill(store.entry_path(key), "\x00\xff\x13garbage, not JSON");
  EXPECT_FALSE(store.lookup(key).has_value());
  EXPECT_EQ(store.counters().quarantined, 1);
}

// ---------------------------------------------------------------------------
// verify / scan / gc

TEST(StoreMaintenance, VerifyQuarantinesOnlyBrokenEntries) {
  TempDir dir("verify");
  store::ResultStore store(dir.str());
  for (int rep = 0; rep < 4; ++rep) {
    store.publish(test_key(rep), R"({"v": 1})");
  }
  // Break one of the four.
  const std::string victim = store.entry_path(test_key(2));
  std::string text = slurp(victim);
  text[text.size() - 3] ^= 0x20;
  spill(victim, text);

  const store::VerifyResult result = store.verify();
  EXPECT_EQ(result.checked, 4);
  EXPECT_EQ(result.ok, 3);
  EXPECT_EQ(result.quarantined, 1);
  // A second verify sees only the three healthy entries.
  const store::VerifyResult again = store.verify();
  EXPECT_EQ(again.checked, 3);
  EXPECT_EQ(again.ok, 3);
  EXPECT_EQ(again.quarantined, 0);
}

TEST(StoreMaintenance, ScanTotalsEntriesAndQuarantine) {
  TempDir dir("scan");
  store::ResultStore store(dir.str());
  store.publish(test_key(0), R"({"v": 1})");
  store.publish(test_key(1), R"({"v": 2})");
  store::DiskUsage usage = store.scan();
  EXPECT_EQ(usage.entries, 2);
  EXPECT_GT(usage.bytes, 0);
  EXPECT_EQ(usage.quarantined_entries, 0);

  spill(store.entry_path(test_key(1)), "broken");
  store.lookup(test_key(1));  // Quarantines.
  usage = store.scan();
  EXPECT_EQ(usage.entries, 1);
  EXPECT_EQ(usage.quarantined_entries, 1);
  EXPECT_GT(usage.quarantined_bytes, 0);
}

TEST(StoreMaintenance, GcEvictsOldestUntilUnderCapAndDropsQuarantine) {
  TempDir dir("gc");
  store::ResultStore store(dir.str());
  std::vector<std::string> paths;
  for (int rep = 0; rep < 5; ++rep) {
    store.publish(test_key(rep), R"({"v": 1})");
    paths.push_back(store.entry_path(test_key(rep)));
    // Distinct mtimes so eviction order is by age, oldest first.
    const auto mtime = fs::last_write_time(paths.back());
    fs::last_write_time(paths.back(), mtime + std::chrono::seconds(rep));
  }
  spill(store.entry_path(test_key(4)), "broken");
  store.lookup(test_key(4));  // Move entry 4 into quarantine.

  const std::int64_t entry_bytes = store.scan().bytes;
  ASSERT_GT(entry_bytes, 0);
  // Cap to roughly half: the oldest entries go, the newest stay.
  const store::GcResult result = store.gc(entry_bytes / 2);
  EXPECT_EQ(result.bytes_before, entry_bytes);
  EXPECT_LE(result.bytes_after, entry_bytes / 2);
  EXPECT_GT(result.removed, 0);
  EXPECT_FALSE(fs::exists(paths[0]));  // Oldest evicted first.
  EXPECT_TRUE(fs::exists(paths[3]));   // Newest healthy entry survives.
  // Quarantine emptied unconditionally.
  EXPECT_EQ(store.scan().quarantined_entries, 0);

  const store::GcResult empty = store.gc(0);
  EXPECT_EQ(empty.bytes_after, 0);
  EXPECT_EQ(store.scan().entries, 0);
}

// ---------------------------------------------------------------------------
// Metrics payload round trip

TEST(MetricsPayload, RoundTripsCountersGaugesAndRawMoments) {
  obs::Registry registry;
  registry.counter("c", {{"station", "3"}}).add(42);
  registry.gauge("g").set(2.5);
  auto& histogram = registry.histogram("h");
  for (const double v : {0.1, 0.9, 0.5, 0.30000000000000004}) {
    histogram.observe(v);
  }
  const obs::Snapshot original = registry.snapshot();

  std::ostringstream out;
  obs::JsonWriter json(out);
  store::write_metrics_payload(json, original);
  const obs::Snapshot decoded =
      store::read_metrics_payload(obs::parse_json(out.str()));

  ASSERT_EQ(decoded.samples().size(), original.samples().size());
  for (std::size_t i = 0; i < original.samples().size(); ++i) {
    const obs::MetricSample& a = original.samples()[i];
    const obs::MetricSample& b = decoded.samples()[i];
    EXPECT_EQ(b.name, a.name);
    EXPECT_EQ(b.labels, a.labels);
    EXPECT_EQ(b.kind, a.kind);
    EXPECT_EQ(b.value, a.value);
    // Raw Welford moments must survive bitwise, or warm reports drift.
    EXPECT_EQ(b.distribution.count(), a.distribution.count());
    EXPECT_EQ(b.distribution.mean(), a.distribution.mean());
    EXPECT_EQ(b.distribution.m2(), a.distribution.m2());
    EXPECT_EQ(b.distribution.min(), a.distribution.min());
    EXPECT_EQ(b.distribution.max(), a.distribution.max());
    EXPECT_EQ(b.distribution.sum(), a.distribution.sum());
  }
  EXPECT_THROW(store::read_metrics_payload(obs::parse_json("{}")),
               plc::Error);
}

// ---------------------------------------------------------------------------
// End-to-end: warm scenario runs are byte-identical and 100% hits.

scenario::Spec tiny_sim_spec() {
  scenario::Spec spec;
  spec.name = "store-test-tiny";
  spec.title = "store test";
  spec.macs[0].label = "CA1";
  spec.stations = {2, 3};
  spec.duration = des::SimTime::from_seconds(0.2);
  spec.repetitions = 2;
  spec.legs.model = false;
  spec.legs.testbed = false;
  spec.legs.exact_pair = false;
  spec.validate();
  return spec;
}

std::string run_report_text(const scenario::Spec& spec,
                            store::ResultStore* store, int jobs,
                            const std::string& path) {
  scenario::RunOptions options;
  options.jobs = jobs;
  options.store = store;
  const scenario::RunOutcome outcome = scenario::run_scenario(spec, options);
  outcome.report.save(path);
  return slurp(path);
}

TEST(StoreScenario, WarmRunIsByteIdenticalAndFullHit) {
  TempDir dir("scenario");
  const scenario::Spec spec = tiny_sim_spec();
  const std::string report_dir = dir.str();

  store::ResultStore cold(dir.str() + "/cache");
  const std::string cold_text =
      run_report_text(spec, &cold, 1, report_dir + "/cold.json");
  EXPECT_EQ(cold.counters().hits, 0);
  EXPECT_EQ(cold.counters().misses, 4);  // 2 stations x 2 reps.
  EXPECT_EQ(cold.counters().publishes, 4);

  store::ResultStore warm(dir.str() + "/cache");
  const std::string warm_text =
      run_report_text(spec, &warm, 1, report_dir + "/warm.json");
  EXPECT_EQ(warm.counters().hits, 4);  // 100% hit rate.
  EXPECT_EQ(warm.counters().misses, 0);
  EXPECT_EQ(warm.counters().publishes, 0);
  EXPECT_EQ(warm_text, cold_text);  // Byte-identical report.
}

// The cache key must be a pure function of the spec content — a warm
// run with a different worker count still hits every entry.
TEST(StoreScenario, KeysAreInvariantAcrossJobs) {
  TempDir dir("jobs");
  const scenario::Spec spec = tiny_sim_spec();
  store::ResultStore cold(dir.str() + "/cache");
  const std::string cold_text =
      run_report_text(spec, &cold, 1, dir.str() + "/j1.json");
  store::ResultStore warm(dir.str() + "/cache");
  const std::string warm_text =
      run_report_text(spec, &warm, 3, dir.str() + "/j3.json");
  EXPECT_EQ(warm.counters().hits, 4);
  EXPECT_EQ(warm.counters().misses, 0);
  EXPECT_EQ(warm_text, cold_text);
}

TEST(StoreScenario, TestbedLegCachesAndReproducesReport) {
  TempDir dir("testbed");
  scenario::Spec spec;
  spec.name = "store-test-testbed";
  spec.title = "store testbed test";
  spec.macs[0].label = "CA1";
  spec.stations = {2};
  spec.legs.sim = false;
  spec.legs.model = false;
  spec.legs.testbed = true;
  spec.legs.exact_pair = false;
  spec.testbed_tests = 2;
  spec.testbed_duration = des::SimTime::from_seconds(0.5);
  spec.validate();

  store::ResultStore cold(dir.str() + "/cache");
  const std::string cold_text =
      run_report_text(spec, &cold, 1, dir.str() + "/cold.json");
  EXPECT_EQ(cold.counters().misses, 2);  // 1 station count x 2 tests.
  EXPECT_EQ(cold.counters().publishes, 2);

  store::ResultStore warm(dir.str() + "/cache");
  const std::string warm_text =
      run_report_text(spec, &warm, 1, dir.str() + "/warm.json");
  EXPECT_EQ(warm.counters().hits, 2);
  EXPECT_EQ(warm.counters().misses, 0);
  EXPECT_EQ(warm_text, cold_text);
}

// A corrupted entry mid-sweep degrades to a re-simulation, not a wrong
// number: the warm report still matches even with one entry broken.
TEST(StoreScenario, CorruptedEntryFallsBackToSimulation) {
  TempDir dir("fallback");
  const scenario::Spec spec = tiny_sim_spec();
  store::ResultStore cold(dir.str() + "/cache");
  const std::string cold_text =
      run_report_text(spec, &cold, 1, dir.str() + "/cold.json");

  // Break one of the four entries on disk.
  bool broke = false;
  for (const auto& entry : fs::recursive_directory_iterator(
           dir.str() + "/cache")) {
    if (entry.is_regular_file() && !broke) {
      std::string text = slurp(entry.path().string());
      text[text.size() / 2] ^= 0x01;
      spill(entry.path().string(), text);
      broke = true;
    }
  }
  ASSERT_TRUE(broke);

  store::ResultStore warm(dir.str() + "/cache");
  const std::string warm_text =
      run_report_text(spec, &warm, 1, dir.str() + "/warm.json");
  EXPECT_EQ(warm.counters().hits, 3);
  EXPECT_EQ(warm.counters().misses, 1);
  EXPECT_EQ(warm.counters().quarantined, 1);
  EXPECT_EQ(warm.counters().publishes, 1);  // Healed by the re-run.
  EXPECT_EQ(warm_text, cold_text);
}

}  // namespace
