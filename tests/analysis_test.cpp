#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "analysis/delay.hpp"
#include "analysis/drift.hpp"
#include "analysis/heterogeneous.hpp"
#include "analysis/exact_chain.hpp"
#include "analysis/model_1901.hpp"
#include "analysis/model_dcf.hpp"
#include "analysis/optimizer.hpp"
#include "phy/timing.hpp"
#include "sim/sim_1901.hpp"
#include "sim/slot_simulator.hpp"
#include "sim/unsaturated.hpp"
#include "util/error.hpp"

namespace plc::analysis {
namespace {

const mac::BackoffConfig kCa1 = mac::BackoffConfig::ca0_ca1();
const phy::TimingConfig kTiming = phy::TimingConfig::paper_default();
const des::SimTime kFrame = des::SimTime::from_us(2050.0);

// --- Per-stage quantities ----------------------------------------------------------

TEST(StageMath, AttemptProbabilityAtZeroBusyIsOne) {
  // With a never-busy medium the deferral counter never fires: the
  // station always reaches BC = 0 and transmits.
  for (const int cw : {1, 8, 64}) {
    for (const int dc : {0, 3, 15}) {
      EXPECT_DOUBLE_EQ(stage_attempt_probability(cw, dc, 0.0), 1.0);
    }
  }
}

TEST(StageMath, AttemptProbabilityAtFullBusy) {
  // p = 1: every countdown event is busy, so the station transmits iff
  // its draw b <= dc; the average is min(dc+1, cw)/cw.
  EXPECT_DOUBLE_EQ(stage_attempt_probability(8, 0, 1.0), 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(stage_attempt_probability(64, 15, 1.0), 16.0 / 64.0);
  EXPECT_DOUBLE_EQ(stage_attempt_probability(4, 15, 1.0), 1.0);
}

TEST(StageMath, AttemptProbabilityDecreasesWithBusy) {
  double previous = 2.0;
  for (double p = 0.0; p <= 1.0; p += 0.1) {
    const double x = stage_attempt_probability(32, 3, p);
    EXPECT_LE(x, previous + 1e-12);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
    previous = x;
  }
}

TEST(StageMath, CountdownAtZeroBusyIsMeanBackoff) {
  // No busy events: countdown slots = E[b] = (CW-1)/2.
  EXPECT_DOUBLE_EQ(stage_expected_countdown(8, 0, 0.0), 3.5);
  EXPECT_DOUBLE_EQ(stage_expected_countdown(64, 15, 0.0), 31.5);
  EXPECT_DOUBLE_EQ(stage_expected_countdown(1, 0, 0.5), 0.0);
}

TEST(StageMath, CountdownShrinksWithBusyWhenDeferralActive) {
  // d = 0: any busy event ends the stage early, so more busy => fewer
  // expected countdown events.
  double previous = 100.0;
  for (double p = 0.0; p <= 1.0; p += 0.2) {
    const double s = stage_expected_countdown(32, 0, p);
    EXPECT_LE(s, previous + 1e-12);
    previous = s;
  }
}

TEST(StageMath, DisabledDeferralMatchesPlainBackoff) {
  // With an unreachable deferral counter, busy probability is irrelevant.
  EXPECT_DOUBLE_EQ(
      stage_attempt_probability(64, mac::kDeferralDisabled, 0.7), 1.0);
  EXPECT_DOUBLE_EQ(
      stage_expected_countdown(64, mac::kDeferralDisabled, 0.7), 31.5);
}

TEST(StageMath, RejectsBadArguments) {
  EXPECT_THROW(stage_attempt_probability(0, 0, 0.5), plc::Error);
  EXPECT_THROW(stage_attempt_probability(8, -1, 0.5), plc::Error);
  EXPECT_THROW(stage_expected_countdown(8, 0, -0.1), plc::Error);
}

// --- Decoupling model -----------------------------------------------------------------

TEST(Model1901, SingleStationClosedForm) {
  const Model1901Result result = solve_1901(1, kCa1);
  EXPECT_DOUBLE_EQ(result.gamma, 0.0);
  // tau = 1 / (E[BC_0] + 1) = 1 / 4.5 = 2/(CW0+1).
  EXPECT_NEAR(result.tau, 2.0 / 9.0, 1e-12);
  const double cycle_us = 3.5 * 35.84 + 2542.64;
  EXPECT_NEAR(result.normalized_throughput(kTiming, kFrame),
              2050.0 / cycle_us, 1e-9);
}

TEST(Model1901, EventProbabilitiesSumToOne) {
  for (const int n : {1, 2, 5, 10, 50}) {
    const Model1901Result result = solve_1901(n, kCa1);
    EXPECT_NEAR(result.p_idle + result.p_success + result.p_collision, 1.0,
                1e-9)
        << "n=" << n;
  }
}

TEST(Model1901, GammaIncreasesWithN) {
  double previous = -1.0;
  for (const int n : {1, 2, 3, 5, 10, 20, 50}) {
    const Model1901Result result = solve_1901(n, kCa1);
    EXPECT_GT(result.gamma, previous) << "n=" << n;
    previous = result.gamma;
  }
}

TEST(Model1901, TauDecreasesWithN) {
  double previous = 2.0;
  for (const int n : {1, 2, 5, 10, 50}) {
    const Model1901Result result = solve_1901(n, kCa1);
    EXPECT_LT(result.tau, previous) << "n=" << n;
    previous = result.tau;
  }
}

TEST(Model1901, StageVisitsDecayAcrossStages) {
  const Model1901Result result = solve_1901(5, kCa1);
  ASSERT_EQ(result.stages.size(), 4u);
  // Stage 0 is entered once per cycle; later stages at most as often.
  EXPECT_NEAR(result.stages[0].expected_visits, 1.0, 1e-9);
  EXPECT_LE(result.stages[1].expected_visits, 1.0 + 1e-9);
}

TEST(Model1901, MatchesSimulatorAtModerateN) {
  // The decoupling assumption is accurate for N >= ~4 (the paper's
  // observation); at small N it overestimates because the stations'
  // stages are anti-correlated (see ExactPair below).
  for (const int n : {4, 5, 7}) {
    const Model1901Result model = solve_1901(n, kCa1);
    const sim::Sim1901Result simulated =
        sim::sim_1901(n, 5e7, 2920.64, 2542.64, 2050.0, kCa1.cw, kCa1.dc);
    EXPECT_NEAR(model.gamma, simulated.collision_probability, 0.025)
        << "n=" << n;
    EXPECT_NEAR(model.normalized_throughput(kTiming, kFrame),
                simulated.normalized_throughput, 0.02)
        << "n=" << n;
  }
}

TEST(Model1901, OverestimatesCollisionsAtSmallN) {
  // The paper's central analytical observation, reproduced: at N = 2 the
  // decoupled prediction lies well above the simulated (= true coupled)
  // collision probability.
  const Model1901Result model = solve_1901(2, kCa1);
  const sim::Sim1901Result simulated =
      sim::sim_1901(2, 5e7, 2920.64, 2542.64, 2050.0, kCa1.cw, kCa1.dc);
  EXPECT_GT(model.gamma, simulated.collision_probability + 0.02);
}

TEST(Model1901, SuccessRatePositive) {
  const Model1901Result result = solve_1901(3, kCa1);
  EXPECT_GT(result.success_rate_per_second(kTiming, kFrame), 100.0);
  EXPECT_LT(result.success_rate_per_second(kTiming, kFrame), 1e6);
}

// --- DCF model ---------------------------------------------------------------------------

TEST(ModelDcf, SingleStation) {
  const ModelDcfResult result = solve_dcf(1, 16, 1024);
  EXPECT_DOUBLE_EQ(result.gamma, 0.0);
  EXPECT_NEAR(result.tau, 1.0 / (1.0 + 7.5), 1e-9);
}

TEST(ModelDcf, MatchesDcfSimulator) {
  // The freeze-corrected Bianchi fixed point tracks the DCF simulator to
  // within a few points of probability (the residual is the usual
  // decoupling error, growing mildly with contention).
  for (const int n : {2, 5, 10}) {
    const ModelDcfResult model = solve_dcf(n, 16, 1024);
    sim::SlotSimulator simulator(sim::make_dcf_entities(n, 16, 1024, 5),
                                 kTiming);
    const sim::SlotSimResults results =
        simulator.run(des::SimTime::from_seconds(40.0));
    EXPECT_NEAR(model.gamma, results.collision_probability(), 0.04)
        << "n=" << n;
  }
}

TEST(ModelDcf, GammaIncreasesWithN) {
  double previous = -1.0;
  for (const int n : {1, 2, 5, 10, 30}) {
    const ModelDcfResult result = solve_dcf(n, 16, 1024);
    EXPECT_GT(result.gamma, previous);
    previous = result.gamma;
  }
}

// --- Drift (coupled occupancy) model -----------------------------------------------------

TEST(Drift, ConvergesForDefaultConfig) {
  for (const int n : {1, 2, 5, 10}) {
    const DriftResult result = solve_drift(n, kCa1);
    EXPECT_TRUE(result.converged) << "n=" << n;
    double total = 0.0;
    for (const double occupancy : result.occupancy) total += occupancy;
    EXPECT_NEAR(total, static_cast<double>(n), 1e-6) << "n=" << n;
  }
}

TEST(Drift, AgreesWithDecouplingAtLargeN) {
  const DriftResult drift = solve_drift(20, kCa1);
  const Model1901Result decoupled = solve_1901(20, kCa1);
  EXPECT_NEAR(drift.gamma, decoupled.gamma, 0.02);
}

TEST(Drift, OccupancyShiftsUpWithN) {
  const DriftResult few = solve_drift(2, kCa1);
  const DriftResult many = solve_drift(20, kCa1);
  // Fraction of stations beyond stage 0 grows with contention.
  const double tail_few = 1.0 - few.occupancy[0] / 2.0;
  const double tail_many = 1.0 - many.occupancy[0] / 20.0;
  EXPECT_GT(tail_many, tail_few);
}

TEST(Drift, TrajectoryConservesStationsAndConverges) {
  std::vector<double> start = {5.0, 0.0, 0.0, 0.0};
  const auto trajectory = drift_trajectory(5, kCa1, start, 4000, 0.5);
  ASSERT_EQ(trajectory.size(), 4001u);
  for (const DriftState& state : trajectory) {
    double total = 0.0;
    for (const double occupancy : state.occupancy) total += occupancy;
    EXPECT_NEAR(total, 5.0, 1e-6);
  }
  // The trajectory should approach the solved equilibrium (loosely: the
  // integrator refreshes its busy estimate once per step, the solver
  // iterates it to convergence).
  const DriftResult equilibrium = solve_drift(5, kCa1);
  const auto& final_state = trajectory.back();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(final_state.occupancy[i], equilibrium.occupancy[i], 0.5)
        << "stage " << i;
  }
}

TEST(Drift, OccupancyMatchesSimulatedStageDistribution) {
  // Validate the occupancy itself, not just gamma: sample the per-stage
  // station counts of a long simulation at every medium event and
  // compare the time-average against the drift equilibrium.
  const int n = 5;
  sim::SlotSimulator simulator(sim::make_1901_entities(n, kCa1, 99));
  std::vector<double> occupancy_sum(4, 0.0);
  std::int64_t samples = 0;
  simulator.set_observer([&](const sim::SlotEvent&) {
    for (int i = 0; i < n; ++i) {
      occupancy_sum[static_cast<std::size_t>(
          simulator.entity(i).stage())] += 1.0;
    }
    ++samples;
  });
  simulator.run(des::SimTime::from_seconds(60.0));
  const DriftResult drift = solve_drift(n, kCa1);
  for (std::size_t stage = 0; stage < 4; ++stage) {
    const double simulated =
        occupancy_sum[stage] / static_cast<double>(samples);
    EXPECT_NEAR(drift.occupancy[stage], simulated, 0.45)
        << "stage " << stage;
  }
}

TEST(Drift, TrajectoryValidatesInputs) {
  EXPECT_THROW(drift_trajectory(5, kCa1, {1.0, 1.0}, 10, 0.5), plc::Error);
  EXPECT_THROW(drift_trajectory(5, kCa1, {1.0, 1.0, 1.0, 1.0}, 10, 0.5),
               plc::Error);  // Sums to 4, not 5.
  EXPECT_THROW(drift_trajectory(5, kCa1, {5.0, 0.0, 0.0, 0.0}, 0, 0.5),
               plc::Error);
}

// --- Exact two-station chain ---------------------------------------------------------------

TEST(ExactPair, TinyConfigMatchesLongSimulation) {
  mac::BackoffConfig tiny;
  tiny.cw = {2, 4};
  tiny.dc = {0, 1};
  const ExactPairResult exact = solve_exact_pair(tiny);
  EXPECT_LT(exact.residual, 1e-10);
  const sim::Sim1901Result simulated =
      sim::sim_1901(2, 2e8, 2920.64, 2542.64, 2050.0, tiny.cw, tiny.dc);
  EXPECT_NEAR(exact.collision_probability,
              simulated.collision_probability, 0.005);
}

TEST(ExactPair, DefaultConfigMatchesSimulatorWhereDecouplingFails) {
  const ExactPairResult exact = solve_exact_pair(kCa1, 4000, 1e-10);
  const sim::Sim1901Result simulated =
      sim::sim_1901(2, 1e8, 2920.64, 2542.64, 2050.0, kCa1.cw, kCa1.dc);
  // The exact chain nails the coupled behaviour...
  EXPECT_NEAR(exact.collision_probability,
              simulated.collision_probability, 0.006);
  // ...which the decoupling model misses by a wide margin at N=2.
  const Model1901Result decoupled = solve_1901(2, kCa1);
  EXPECT_GT(std::abs(decoupled.gamma - simulated.collision_probability),
            3.0 * std::abs(exact.collision_probability -
                           simulated.collision_probability));
}

TEST(ExactPair, ProbabilitiesWellFormed) {
  mac::BackoffConfig small;
  small.cw = {4, 8};
  small.dc = {0, 3};
  const ExactPairResult exact = solve_exact_pair(small);
  EXPECT_NEAR(exact.p_idle + exact.p_success + exact.p_collision, 1.0,
              1e-9);
  EXPECT_GT(exact.p_success, 0.0);
  EXPECT_GT(exact.p_collision, 0.0);
  EXPECT_GT(exact.normalized_throughput(kTiming, kFrame), 0.0);
  // Stage joint sums to 1 and is symmetric (identical stations).
  double total = 0.0;
  for (std::size_t i = 0; i < exact.stage_joint.size(); ++i) {
    for (std::size_t j = 0; j < exact.stage_joint.size(); ++j) {
      total += exact.stage_joint[i][j];
      EXPECT_NEAR(exact.stage_joint[i][j], exact.stage_joint[j][i], 1e-6);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ExactPair, StagesAreAntiCorrelated) {
  // The coupling signature: P(both at stage 0) is *below* the product of
  // the marginals — when one station holds the channel the other has been
  // pushed up.
  mac::BackoffConfig small;
  small.cw = {4, 8, 16};
  small.dc = {0, 1, 3};
  const ExactPairResult exact = solve_exact_pair(small);
  double marginal0 = 0.0;
  for (std::size_t j = 0; j < exact.stage_joint.size(); ++j) {
    marginal0 += exact.stage_joint[0][j];
  }
  EXPECT_LT(exact.stage_joint[0][0], marginal0 * marginal0);
}

TEST(ExactPair, GuardsAgainstHugeStateSpaces) {
  mac::BackoffConfig big;
  big.cw = {1 << 12};
  big.dc = {1 << 12};
  EXPECT_THROW(solve_exact_pair(big), plc::Error);
}

// --- Heterogeneous exact pair ----------------------------------------------------------------

TEST(ExactPairHeterogeneous, SymmetricCallMatchesHomogeneous) {
  mac::BackoffConfig small;
  small.cw = {4, 8};
  small.dc = {0, 1};
  const ExactPairResult homogeneous = solve_exact_pair(small);
  const ExactPairResult heterogeneous = solve_exact_pair(small, small);
  EXPECT_NEAR(homogeneous.collision_probability,
              heterogeneous.collision_probability, 1e-9);
  EXPECT_NEAR(heterogeneous.success_share_a(), 0.5, 1e-6);
}

TEST(ExactPairHeterogeneous, SmallerWindowWinsTheChannel) {
  // A station with a tighter window grabs more successes — the exact
  // quantification of the coexistence (boosting-vs-default) question.
  mac::BackoffConfig aggressive;
  aggressive.cw = {4, 8};
  aggressive.dc = {0, 1};
  mac::BackoffConfig relaxed;
  relaxed.cw = {16, 32};
  relaxed.dc = {0, 1};
  const ExactPairResult result = solve_exact_pair(aggressive, relaxed);
  EXPECT_GT(result.success_share_a(), 0.6);
  EXPECT_NEAR(result.p_success_a + result.p_success_b, result.p_success,
              1e-12);
  EXPECT_NEAR(result.p_idle + result.p_success + result.p_collision, 1.0,
              1e-9);
}

TEST(ExactPairHeterogeneous, MatchesHeterogeneousSimulation) {
  mac::BackoffConfig a;
  a.cw = {4, 8};
  a.dc = {0, 1};
  mac::BackoffConfig b;
  b.cw = {8, 16};
  b.dc = {1, 3};
  const ExactPairResult exact = solve_exact_pair(a, b);

  std::vector<std::unique_ptr<mac::BackoffEntity>> entities;
  entities.push_back(std::make_unique<mac::Backoff1901>(
      a, des::RandomStream(11)));
  entities.push_back(std::make_unique<mac::Backoff1901>(
      b, des::RandomStream(22)));
  sim::SlotSimulator simulator(std::move(entities), kTiming);
  simulator.enable_winner_trace(true);
  const sim::SlotSimResults results =
      simulator.run(des::SimTime::from_seconds(200.0));

  EXPECT_NEAR(exact.collision_probability,
              results.collision_probability(), 0.01);
  const double share_a =
      static_cast<double>(results.tx_success[0]) /
      static_cast<double>(results.successes);
  EXPECT_NEAR(exact.success_share_a(), share_a, 0.02);
}

// --- Heterogeneous decoupling model ------------------------------------------------------------

TEST(Heterogeneous, SingleClassMatchesHomogeneousModel) {
  const HeterogeneousResult mixed =
      solve_heterogeneous({{kCa1, 5}});
  const Model1901Result homogeneous = solve_1901(5, kCa1);
  ASSERT_TRUE(mixed.converged);
  EXPECT_NEAR(mixed.classes[0].tau, homogeneous.tau, 1e-9);
  EXPECT_NEAR(mixed.classes[0].gamma, homogeneous.gamma, 1e-9);
  EXPECT_NEAR(mixed.p_success, homogeneous.p_success, 1e-9);
  EXPECT_NEAR(mixed.classes[0].success_share, 1.0, 1e-12);
  EXPECT_NEAR(mixed.classes[0].per_station_share, 0.2, 1e-12);
}

TEST(Heterogeneous, SingleStationHasNoCollisions) {
  const HeterogeneousResult result = solve_heterogeneous({{kCa1, 1}});
  EXPECT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(result.classes[0].gamma, 0.0);
  EXPECT_DOUBLE_EQ(result.p_collision, 0.0);
}

TEST(Heterogeneous, GreedyClassTakesMoreThanItsFairShare) {
  mac::BackoffConfig greedy;
  greedy.cw = {4, 8};
  greedy.dc = {3, 7};  // d >= CW-1: deferral effectively disabled.
  const HeterogeneousResult result =
      solve_heterogeneous({{greedy, 1}, {kCa1, 4}});
  ASSERT_TRUE(result.converged);
  // 5 stations, fair per-station share 0.2.
  EXPECT_GT(result.classes[0].per_station_share, 0.3);
  EXPECT_LT(result.classes[1].per_station_share, 0.2);
  double share_sum = 0.0;
  for (const ClassResult& c : result.classes) share_sum += c.success_share;
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
}

TEST(Heterogeneous, SharesMatchMixedSimulation) {
  mac::BackoffConfig greedy;
  greedy.cw = {4, 8};
  greedy.dc = {3, 7};
  const HeterogeneousResult model =
      solve_heterogeneous({{greedy, 1}, {kCa1, 4}});

  des::RandomStream root(0x4E7);
  std::vector<std::unique_ptr<mac::BackoffEntity>> entities;
  entities.push_back(std::make_unique<mac::Backoff1901>(
      greedy, des::RandomStream(root.derive_seed("greedy"))));
  for (int i = 0; i < 4; ++i) {
    entities.push_back(std::make_unique<mac::Backoff1901>(
        kCa1,
        des::RandomStream(root.derive_seed("d" + std::to_string(i)))));
  }
  sim::SlotSimulator simulator(std::move(entities), kTiming);
  const sim::SlotSimResults results =
      simulator.run(des::SimTime::from_seconds(120.0));
  const double greedy_share =
      static_cast<double>(results.tx_success[0]) /
      static_cast<double>(results.successes);
  // Decoupling error is larger in heterogeneous settings; the *ordering*
  // and rough magnitude must hold.
  EXPECT_NEAR(model.classes[0].success_share, greedy_share, 0.12);
  EXPECT_GT(model.classes[0].success_share, 0.3);
  EXPECT_GT(greedy_share, 0.3);
}

TEST(Heterogeneous, ValidatesInput) {
  EXPECT_THROW(solve_heterogeneous({}), plc::Error);
  EXPECT_THROW(solve_heterogeneous({{kCa1, 0}}), plc::Error);
}

// --- Unsaturated delay model -------------------------------------------------------------------

TEST(DelayModel, SaturationRateMatchesSaturatedModel) {
  const double capacity =
      saturation_rate_fps(5, kCa1, kTiming, kFrame);
  const Model1901Result saturated = solve_1901(5, kCa1);
  EXPECT_NEAR(capacity, saturated.success_rate_per_second(kTiming, kFrame) / 5.0,
              1e-9);
  EXPECT_GT(capacity, 10.0);
  EXPECT_LT(capacity, 1000.0);
}

TEST(DelayModel, SingleStationLowLoadIsServiceTime) {
  // N = 1, light load: sojourn ~ E[S] = E[BC] slots + Ts.
  const double capacity = saturation_rate_fps(1, kCa1, kTiming, kFrame);
  const DelayModelResult model =
      access_delay(1, kCa1, kTiming, kFrame, 0.05 * capacity);
  const double expected_service = (3.5 * 35.84 + 2542.64) * 1e-6;
  EXPECT_NEAR(model.mean_service_s, expected_service, 1e-6);
  EXPECT_NEAR(model.mean_sojourn_s, expected_service, 0.2e-3);
  EXPECT_TRUE(model.stable);
}

TEST(DelayModel, SojournGrowsWithLoadAndDiverges) {
  const double capacity = saturation_rate_fps(5, kCa1, kTiming, kFrame);
  double previous = 0.0;
  for (const double load : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const DelayModelResult model =
        access_delay(5, kCa1, kTiming, kFrame, load * capacity);
    EXPECT_GT(model.mean_sojourn_s, previous);
    previous = model.mean_sojourn_s;
  }
  const DelayModelResult overloaded =
      access_delay(5, kCa1, kTiming, kFrame, 3.0 * capacity);
  EXPECT_FALSE(overloaded.stable);
  EXPECT_TRUE(std::isinf(overloaded.mean_sojourn_s));
}

TEST(DelayModel, MatchesSimulationAtSingleStation) {
  const double capacity = saturation_rate_fps(1, kCa1, kTiming, kFrame);
  for (const double load : {0.2, 0.5, 0.8}) {
    const DelayModelResult model =
        access_delay(1, kCa1, kTiming, kFrame, load * capacity);
    sim::PoissonMacSpec spec;
    spec.stations = 1;
    spec.arrival_rate_fps = load * capacity;
    spec.duration = des::SimTime::from_seconds(120.0);
    const sim::PoissonMacResult simulated = sim::run_poisson_mac(spec);
    EXPECT_NEAR(model.mean_sojourn_s, simulated.mean_delay_s,
                0.15 * simulated.mean_delay_s)
        << "load=" << load;
  }
}

TEST(DelayModel, TracksSimulationUnderContention) {
  const double capacity = saturation_rate_fps(5, kCa1, kTiming, kFrame);
  for (const double load : {0.3, 0.8}) {
    const DelayModelResult model =
        access_delay(5, kCa1, kTiming, kFrame, load * capacity);
    sim::PoissonMacSpec spec;
    spec.stations = 5;
    spec.arrival_rate_fps = load * capacity;
    spec.duration = des::SimTime::from_seconds(120.0);
    const sim::PoissonMacResult simulated = sim::run_poisson_mac(spec);
    // Open-loop approximation: generous bound, tight enough to catch
    // regressions (ratio within [0.6, 1.6]).
    EXPECT_GT(model.mean_sojourn_s, 0.6 * simulated.mean_delay_s)
        << "load=" << load;
    EXPECT_LT(model.mean_sojourn_s, 1.6 * simulated.mean_delay_s)
        << "load=" << load;
  }
}

TEST(DelayModel, RejectsBadArguments) {
  EXPECT_THROW(access_delay(0, kCa1, kTiming, kFrame, 10.0), plc::Error);
  EXPECT_THROW(access_delay(2, kCa1, kTiming, kFrame, 0.0), plc::Error);
  EXPECT_THROW(solve_1901_continuous(0.5, kCa1), plc::Error);
}

TEST(PoissonMacSim, ThroughputEqualsOfferedLoadWhenStable) {
  sim::PoissonMacSpec spec;
  spec.stations = 3;
  spec.arrival_rate_fps = 30.0;
  spec.duration = des::SimTime::from_seconds(60.0);
  const sim::PoissonMacResult result = sim::run_poisson_mac(spec);
  EXPECT_NEAR(result.throughput_fps, 90.0, 5.0);
  EXPECT_LT(result.backlog_at_end, 10u);
  EXPECT_GT(result.p99_delay_s, result.p50_delay_s);
  EXPECT_GE(result.frames_generated,
            result.frames_delivered);
}

// --- Optimizer ("boosting") -------------------------------------------------------------------

TEST(Optimizer, RanksByThroughput) {
  const auto scores =
      rank_configurations(10, kTiming, kFrame, default_candidate_pool());
  ASSERT_GT(scores.size(), 3u);
  for (std::size_t i = 1; i < scores.size(); ++i) {
    EXPECT_GE(scores[i - 1].throughput, scores[i].throughput);
  }
}

TEST(Optimizer, SomeCandidateBeatsDefaultAtLargeN) {
  // The "boosting" premise: at high contention, the default Table 1
  // configuration is not throughput-optimal.
  const auto scores =
      rank_configurations(30, kTiming, kFrame, default_candidate_pool());
  double default_throughput = 0.0;
  for (const CandidateScore& score : scores) {
    if (score.config.name == "CA0/CA1") {
      default_throughput = score.throughput;
    }
  }
  ASSERT_GT(default_throughput, 0.0);
  EXPECT_GT(scores.front().throughput, default_throughput * 1.02);
}

TEST(Optimizer, BestUniformWindowGrowsWithN) {
  const CandidateScore few = best_uniform_window(2, kTiming, kFrame);
  const CandidateScore many = best_uniform_window(30, kTiming, kFrame);
  ASSERT_EQ(few.config.cw.size(), 1u);
  ASSERT_EQ(many.config.cw.size(), 1u);
  EXPECT_GT(many.config.cw[0], few.config.cw[0]);
}

TEST(Optimizer, BestUniformWindowPredictionValidatedBySimulation) {
  const CandidateScore best = best_uniform_window(10, kTiming, kFrame);
  const sim::Sim1901Result simulated = sim::sim_1901(
      10, 3e7, 2920.64, 2542.64, 2050.0, best.config.cw, best.config.dc);
  EXPECT_NEAR(best.throughput, simulated.normalized_throughput, 0.03);
}

}  // namespace
}  // namespace plc::analysis
