// Tests for the §4.1 substitute machinery: Gilbert-Elliott channels,
// tone-map update MMEs, and receiver-driven modulation adaptation.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "emu/network.hpp"
#include "mme/sniffer.hpp"
#include "mme/tonemap_update.hpp"
#include "phy/channel.hpp"
#include "util/error.hpp"
#include "workload/sources.hpp"

namespace plc {
namespace {

// --- Gilbert-Elliott channel ----------------------------------------------------

TEST(Channel, StartsGoodAndAlternates) {
  des::Scheduler scheduler;
  phy::GilbertElliottParams params;
  params.mean_good = des::SimTime::from_us(1'000.0);
  params.mean_bad = des::SimTime::from_us(1'000.0);
  phy::GilbertElliottChannel channel(params, des::RandomStream(1));
  EXPECT_FALSE(channel.bad());
  EXPECT_DOUBLE_EQ(channel.pb_error_rate(), params.good_pb_error);
  channel.start(scheduler);
  // Count transitions over a long horizon.
  bool saw_bad = false;
  bool saw_good_again = false;
  for (int i = 0; i < 100'000 && !(saw_bad && saw_good_again); ++i) {
    if (!scheduler.step()) break;
    if (channel.bad()) saw_bad = true;
    if (saw_bad && !channel.bad()) saw_good_again = true;
  }
  EXPECT_TRUE(saw_bad);
  EXPECT_TRUE(saw_good_again);
}

TEST(Channel, FractionBadMatchesSojournRatio) {
  des::Scheduler scheduler;
  phy::GilbertElliottParams params;
  params.mean_good = des::SimTime::from_us(3'000.0);
  params.mean_bad = des::SimTime::from_us(1'000.0);
  phy::GilbertElliottChannel channel(params, des::RandomStream(7));
  channel.start(scheduler);
  scheduler.run_until(des::SimTime::from_seconds(50.0));
  // Expected fraction bad = 1000 / (3000 + 1000) = 0.25.
  EXPECT_NEAR(channel.fraction_bad(scheduler.now()), 0.25, 0.03);
}

TEST(Channel, ErrorRateFollowsState) {
  des::Scheduler scheduler;
  phy::GilbertElliottParams params;
  params.good_pb_error = 0.0;
  params.bad_pb_error = 0.5;
  phy::GilbertElliottChannel channel(params, des::RandomStream(3));
  channel.start(scheduler);
  for (int i = 0; i < 1000; ++i) {
    if (!scheduler.step()) break;
    EXPECT_DOUBLE_EQ(channel.pb_error_rate(),
                     channel.bad() ? 0.5 : 0.0);
  }
}

TEST(Channel, ValidatesParams) {
  phy::GilbertElliottParams params;
  params.mean_good = des::SimTime::zero();
  EXPECT_THROW(
      phy::GilbertElliottChannel(params, des::RandomStream(1)), Error);
  params = phy::GilbertElliottParams{};
  params.bad_pb_error = 1.5;
  EXPECT_THROW(
      phy::GilbertElliottChannel(params, des::RandomStream(1)), Error);
}

// --- ToneMapUpdate codec ------------------------------------------------------------

TEST(ToneMapMme, RoundTrip) {
  mme::ToneMapUpdate update;
  update.link_id = 1;
  update.profile = 2;
  update.error_permille = mme::ToneMapUpdate::to_permille(0.123);
  const frames::MacAddress rx = frames::MacAddress::for_station(2);
  const frames::MacAddress tx = frames::MacAddress::for_station(1);
  const mme::Mme mme = update.to_mme(rx, tx);
  EXPECT_EQ(mme.header.mmtype, 0xA03A);  // 0xA038 base | indication.
  const auto parsed = mme::ToneMapUpdate::from_mme(mme);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->link_id, 1);
  EXPECT_EQ(parsed->profile, 2);
  EXPECT_NEAR(parsed->error_rate(), 0.123, 0.001);
}

TEST(ToneMapMme, RejectsOtherTypesAndBadRates) {
  mme::SnifferRequest other;
  EXPECT_FALSE(mme::ToneMapUpdate::from_mme(
                   other.to_mme(frames::MacAddress::for_station(1),
                                frames::MacAddress::for_station(2)))
                   .has_value());
  EXPECT_THROW(mme::ToneMapUpdate::to_permille(1.5), Error);
}

// --- Profile ladder --------------------------------------------------------------------

TEST(ProfileLadder, OrderedByRate) {
  double previous = 0.0;
  for (int i = 0; i < emu::kToneMapProfileCount; ++i) {
    const double rate = emu::tonemap_profile(i).bit_rate_bps();
    EXPECT_GT(rate, previous);
    previous = rate;
  }
  EXPECT_THROW(emu::tonemap_profile(-1), Error);
  EXPECT_THROW(emu::tonemap_profile(emu::kToneMapProfileCount), Error);
}

// --- End-to-end adaptation ---------------------------------------------------------------

struct AdaptationFixture {
  emu::Network network{0xADA97};
  emu::HpavDevice* sender = nullptr;
  emu::HpavDevice* receiver = nullptr;
  std::unique_ptr<workload::SaturatedSource> source;

  explicit AdaptationFixture(double good_error, double bad_error,
                             bool install_channel = true) {
    emu::DeviceConfig config;
    config.adaptation.enabled = true;
    sender = &network.add_device(config);
    receiver = &network.add_device(config);
    if (install_channel) {
      phy::GilbertElliottParams params;
      params.mean_good = des::SimTime::from_seconds(0.5);
      params.mean_bad = des::SimTime::from_seconds(0.25);
      params.good_pb_error = good_error;
      params.bad_pb_error = bad_error;
      network.add_link_channel(sender->tei(), receiver->tei(), params);
    }
    workload::FrameTemplate frame_template;
    frame_template.destination = receiver->mac();
    frame_template.source = sender->mac();
    source = std::make_unique<workload::SaturatedSource>(
        network.scheduler(), frame_template,
        [this](frames::EthernetFrame frame) {
          sender->host_send(std::move(frame));
          return sender->tx_backlog_pbs();
        },
        256);
  }

  void run(double seconds) {
    network.start();
    source->start();
    network.run_for(des::SimTime::from_seconds(seconds));
  }
};

TEST(Adaptation, CleanChannelStaysAtHighRate) {
  AdaptationFixture fixture(0.0, 0.0, /*install_channel=*/false);
  fixture.run(10.0);
  EXPECT_EQ(fixture.sender->link_tx_profile(fixture.receiver->tei(),
                                            frames::Priority::kCa1),
            emu::kDefaultToneMapProfile);
  EXPECT_EQ(fixture.receiver->tonemap_updates_sent(), 0);
  EXPECT_GT(fixture.receiver->host_frames_delivered(), 1000);
}

TEST(Adaptation, NoisyChannelTriggersUpdatesAndRobustProfiles) {
  AdaptationFixture fixture(0.001, 0.45);
  fixture.run(20.0);
  // The receiver told the sender to back off the modulation at least
  // once, and the MMEs arrived (firmware-consumed, never at the host).
  EXPECT_GT(fixture.receiver->tonemap_updates_sent(), 0);
  EXPECT_GT(fixture.sender->tonemap_updates_received(), 0);
  EXPECT_LE(fixture.sender->tonemap_updates_received(),
            fixture.receiver->tonemap_updates_sent());
  // Data still flows despite the bad channel.
  EXPECT_GT(fixture.receiver->host_frames_delivered(), 500);
}

TEST(Adaptation, RecoversToFastProfileAfterBadSpell) {
  // A channel that is bad only rarely: after bad spells the profile must
  // climb back up (step-up path exercised).
  AdaptationFixture fixture(0.0, 0.45);
  fixture.run(30.0);
  ASSERT_GT(fixture.receiver->tonemap_updates_sent(), 1);
  // At the end of a long mostly-good period the link is most likely back
  // at a fast profile; require at least above the most-robust.
  EXPECT_GE(fixture.sender->link_tx_profile(fixture.receiver->tei(),
                                            frames::Priority::kCa1),
            1);
}

TEST(Adaptation, FrameDurationsFollowTheProfile) {
  AdaptationFixture fixture(0.001, 0.45);
  struct Tap : medium::MediumObserver {
    std::set<std::uint16_t> durations;
    void on_medium_event(const medium::MediumEventRecord& record) override {
      for (const auto& sof : record.sofs) {
        if (!sof.mme_flag) durations.insert(sof.frame_length_units);
      }
    }
  } tap;
  fixture.network.domain().add_observer(tap);
  fixture.run(20.0);
  // Profile switches produce at least two distinct data-MPDU durations.
  EXPECT_GE(tap.durations.size(), 2u);
}

TEST(NetworkChannels, ValidatesAndReportsState) {
  emu::Network network(5);
  emu::HpavDevice& a = network.add_device();
  emu::HpavDevice& b = network.add_device();
  EXPECT_THROW(
      network.add_link_channel(a.tei(), 99, phy::GilbertElliottParams{}),
      Error);
  network.add_link_channel(a.tei(), b.tei(),
                           phy::GilbertElliottParams{});
  EXPECT_NE(network.link_channel(a.tei(), b.tei()), nullptr);
  EXPECT_EQ(network.link_channel(b.tei(), a.tei()), nullptr);
  EXPECT_DOUBLE_EQ(network.link_pb_error_rate(b.tei(), a.tei(), 0.42),
                   0.42);
  network.start();
  EXPECT_THROW(network.add_link_channel(a.tei(), b.tei(),
                                        phy::GilbertElliottParams{}),
               Error);
}

}  // namespace
}  // namespace plc
