#include <numeric>

#include <gtest/gtest.h>

#include "frames/ethernet.hpp"
#include "frames/mac_address.hpp"
#include "frames/mpdu.hpp"
#include "frames/pb.hpp"
#include "frames/sack.hpp"
#include "util/error.hpp"

namespace plc::frames {
namespace {

EthernetFrame make_frame(int payload_bytes, std::uint8_t fill = 0xAB) {
  EthernetFrame frame;
  frame.destination = MacAddress::for_station(2);
  frame.source = MacAddress::for_station(1);
  frame.ether_type = kEtherTypeIpv4;
  frame.payload.assign(static_cast<std::size_t>(payload_bytes), fill);
  return frame;
}

// --- MacAddress -----------------------------------------------------------------

TEST(MacAddress, ParseFormatRoundTrip) {
  const MacAddress mac = MacAddress::parse("02:19:01:aa:BB:cc");
  EXPECT_EQ(mac.to_string(), "02:19:01:aa:bb:cc");
}

TEST(MacAddress, ParseRejectsMalformed) {
  EXPECT_THROW(MacAddress::parse("0219:01:aa:bb:cc"), plc::Error);
  EXPECT_THROW(MacAddress::parse("02:19:01:aa:bb"), plc::Error);
  EXPECT_THROW(MacAddress::parse("02:19:01:aa:bb:cg"), plc::Error);
}

TEST(MacAddress, Broadcast) {
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_FALSE(MacAddress::for_station(1).is_broadcast());
}

TEST(MacAddress, ForStationIsUniqueAndLocal) {
  const MacAddress a = MacAddress::for_station(1);
  const MacAddress b = MacAddress::for_station(2);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.bytes()[0] & 0x02, 0x02);  // Locally administered bit.
  EXPECT_THROW(MacAddress::for_station(-1), plc::Error);
  EXPECT_THROW(MacAddress::for_station(256), plc::Error);
}

TEST(MacAddress, WriteReadRoundTrip) {
  const MacAddress mac = MacAddress::parse("12:34:56:78:9a:bc");
  std::uint8_t buffer[6];
  mac.write_to(buffer);
  EXPECT_EQ(MacAddress::read_from(buffer), mac);
}

// --- EthernetFrame -------------------------------------------------------------

TEST(Ethernet, SerializeDeserializeRoundTrip) {
  const EthernetFrame frame = make_frame(300, 0x5C);
  const EthernetFrame parsed = EthernetFrame::deserialize(frame.serialize());
  EXPECT_EQ(parsed.destination, frame.destination);
  EXPECT_EQ(parsed.source, frame.source);
  EXPECT_EQ(parsed.ether_type, frame.ether_type);
  EXPECT_EQ(parsed.payload, frame.payload);
}

TEST(Ethernet, ShortPayloadIsPadded) {
  const EthernetFrame frame = make_frame(10);
  EXPECT_EQ(frame.wire_size(), 14 + kMinEthernetPayload);
  const auto bytes = frame.serialize();
  EXPECT_EQ(bytes.size(), 14 + kMinEthernetPayload);
  // Padding bytes are zero.
  for (std::size_t i = 14 + 10; i < bytes.size(); ++i) {
    EXPECT_EQ(bytes[i], 0);
  }
}

TEST(Ethernet, RejectsOversizedPayload) {
  const EthernetFrame frame = make_frame(1501);
  EXPECT_THROW(frame.serialize(), plc::Error);
}

TEST(Ethernet, DeserializeRejectsTruncated) {
  const std::vector<std::uint8_t> tiny(13, 0);
  EXPECT_THROW(EthernetFrame::deserialize(tiny), plc::Error);
}

// --- Segmenter / Reassembler -----------------------------------------------------

TEST(Segmentation, FramesSurviveTheConvergenceLayer) {
  Segmenter segmenter;
  Reassembler reassembler;
  std::vector<EthernetFrame> sent;
  for (int i = 0; i < 20; ++i) {
    sent.push_back(make_frame(100 + i * 37,
                              static_cast<std::uint8_t>(i)));
    segmenter.push_frame(sent.back());
  }
  std::vector<EthernetFrame> received;
  for (const PhysicalBlock& pb : segmenter.pop_pbs(1000, /*flush=*/true)) {
    for (const EthernetFrame& frame : reassembler.push_pb(pb)) {
      received.push_back(frame);
    }
  }
  ASSERT_EQ(received.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(received[i].payload, sent[i].payload) << "frame " << i;
    EXPECT_EQ(received[i].source, sent[i].source);
  }
  EXPECT_EQ(reassembler.frames_delivered(), 20);
  EXPECT_EQ(reassembler.frames_dropped(), 0);
}

TEST(Segmentation, PbsAreFixedSizeWithSequentialSsns) {
  Segmenter segmenter;
  for (int i = 0; i < 10; ++i) segmenter.push_frame(make_frame(1400));
  const auto pbs = segmenter.pop_pbs(1000, false);
  ASSERT_GT(pbs.size(), 2u);
  for (std::size_t i = 0; i < pbs.size(); ++i) {
    EXPECT_EQ(pbs[i].ssn, static_cast<std::uint16_t>(i));
    EXPECT_EQ(pbs[i].used, kPbBytes);
  }
}

TEST(Segmentation, WithoutFlushKeepsPartialTail) {
  Segmenter segmenter;
  segmenter.push_frame(make_frame(100));  // ~116 bytes < 512.
  EXPECT_EQ(segmenter.complete_pb_count(), 0);
  EXPECT_TRUE(segmenter.has_pending_bytes());
  EXPECT_TRUE(segmenter.pop_pbs(10, false).empty());
  const auto flushed = segmenter.pop_pbs(10, true);
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_LT(flushed[0].used, kPbBytes);
  EXPECT_FALSE(segmenter.has_pending_bytes());
}

TEST(Segmentation, PopRespectsMaxCount) {
  Segmenter segmenter;
  for (int i = 0; i < 20; ++i) segmenter.push_frame(make_frame(1400));
  const int total = segmenter.complete_pb_count();
  const auto first = segmenter.pop_pbs(3, false);
  EXPECT_EQ(first.size(), 3u);
  EXPECT_EQ(segmenter.complete_pb_count(), total - 3);
}

TEST(Segmentation, CorruptPbDropsOnlyOverlappingFrames) {
  Segmenter segmenter;
  std::vector<EthernetFrame> sent;
  for (int i = 0; i < 12; ++i) {
    sent.push_back(make_frame(400, static_cast<std::uint8_t>(0x10 + i)));
    segmenter.push_frame(sent.back());
  }
  auto pbs = segmenter.pop_pbs(1000, true);
  ASSERT_GE(pbs.size(), 3u);
  pbs[1].received_ok = false;  // Corrupt the second physical block.
  Reassembler reassembler;
  std::vector<EthernetFrame> received;
  for (const PhysicalBlock& pb : pbs) {
    for (const EthernetFrame& frame : reassembler.push_pb(pb)) {
      received.push_back(frame);
    }
  }
  EXPECT_GT(reassembler.frames_dropped(), 0);
  EXPECT_EQ(reassembler.frames_delivered() + reassembler.frames_dropped(),
            static_cast<std::int64_t>(sent.size()));
  // Delivered frames are intact copies of some sent frames.
  for (const EthernetFrame& frame : received) {
    bool found = false;
    for (const EthernetFrame& original : sent) {
      if (original.payload == frame.payload) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

// --- SoF delimiter ----------------------------------------------------------------

TEST(Sof, EncodeDecodeRoundTrip) {
  SofDelimiter sof;
  sof.src_tei = 3;
  sof.dst_tei = 8;
  sof.link_id = static_cast<std::uint8_t>(Priority::kCa2);
  sof.mpdu_cnt = 1;
  sof.pb_count = 16;
  sof.sack_requested = true;
  sof.mme_flag = true;
  sof.set_frame_duration(des::SimTime::from_us(1025.0));
  const SofDelimiter parsed = SofDelimiter::decode(sof.encode());
  EXPECT_EQ(parsed.src_tei, 3);
  EXPECT_EQ(parsed.dst_tei, 8);
  EXPECT_EQ(parsed.priority(), Priority::kCa2);
  EXPECT_EQ(parsed.mpdu_cnt, 1);
  EXPECT_EQ(parsed.pb_count, 16);
  EXPECT_TRUE(parsed.sack_requested);
  EXPECT_TRUE(parsed.mme_flag);
  EXPECT_EQ(parsed.frame_length_units, sof.frame_length_units);
}

TEST(Sof, FrameDurationQuantizedToUnits) {
  SofDelimiter sof;
  sof.set_frame_duration(des::SimTime::from_us(2050.0));
  // 2050 us / 1.28 us per unit = 1601.56... -> rounds up to 1602 units.
  EXPECT_EQ(sof.frame_length_units, 1602);
  EXPECT_GE(sof.frame_duration(), des::SimTime::from_us(2050.0));
}

TEST(Sof, DecodeRejectsCorruptedCrc) {
  SofDelimiter sof;
  sof.src_tei = 1;
  auto bytes = sof.encode();
  bytes[1] ^= 0xFF;
  EXPECT_THROW(SofDelimiter::decode(bytes), plc::Error);
}

TEST(Sof, DecodeRejectsWrongLengthOrType) {
  SofDelimiter sof;
  auto bytes = sof.encode();
  bytes.push_back(0);
  EXPECT_THROW(SofDelimiter::decode(bytes), plc::Error);
  auto wrong_type = sof.encode();
  wrong_type[0] = static_cast<std::uint8_t>(DelimiterType::kSack);
  wrong_type[15] = crc8(std::span(wrong_type).first(15));
  EXPECT_THROW(SofDelimiter::decode(wrong_type), plc::Error);
}

TEST(Sof, PriorityNames) {
  EXPECT_STREQ(to_string(Priority::kCa0), "CA0");
  EXPECT_STREQ(to_string(Priority::kCa3), "CA3");
  EXPECT_EQ(priority_bits(Priority::kCa3), 3);
  EXPECT_EQ(priority_bits(Priority::kCa1), 1);
}

// --- SACK -----------------------------------------------------------------------------

TEST(Sack, FromOutcomesClassifies) {
  EXPECT_EQ(SackDelimiter::from_outcomes(1, 2, {true, true}).result,
            SackResult::kAllGood);
  EXPECT_EQ(SackDelimiter::from_outcomes(1, 2, {false, false}).result,
            SackResult::kAllBad);
  EXPECT_EQ(SackDelimiter::from_outcomes(1, 2, {true, false}).result,
            SackResult::kPartial);
}

TEST(Sack, EncodeDecodeRoundTrip) {
  std::vector<bool> pb_ok;
  for (int i = 0; i < 19; ++i) pb_ok.push_back(i % 3 != 0);
  const SackDelimiter sack = SackDelimiter::from_outcomes(7, 9, pb_ok);
  const SackDelimiter parsed = SackDelimiter::decode(sack.encode());
  EXPECT_EQ(parsed.src_tei, 7);
  EXPECT_EQ(parsed.dst_tei, 9);
  EXPECT_EQ(parsed.result, SackResult::kPartial);
  EXPECT_EQ(parsed.pb_ok, pb_ok);
  EXPECT_EQ(parsed.good_count(), sack.good_count());
  EXPECT_EQ(parsed.bad_count(), sack.bad_count());
}

TEST(Sack, DecodeRejectsCorruption) {
  const SackDelimiter sack =
      SackDelimiter::from_outcomes(1, 2, {true, false, true});
  auto bytes = sack.encode();
  bytes[2] ^= 0x01;
  EXPECT_THROW(SackDelimiter::decode(bytes), plc::Error);
}

TEST(Sack, EmptyBitmapRoundTrips) {
  const SackDelimiter sack = SackDelimiter::from_outcomes(1, 2, {});
  const SackDelimiter parsed = SackDelimiter::decode(sack.encode());
  EXPECT_TRUE(parsed.pb_ok.empty());
  EXPECT_EQ(parsed.result, SackResult::kAllGood);
}

// --- CRC-8 -----------------------------------------------------------------------------

TEST(Crc8, KnownProperties) {
  const std::vector<std::uint8_t> empty;
  EXPECT_EQ(crc8(empty), 0);
  const std::vector<std::uint8_t> a = {0x01, 0x02, 0x03};
  std::vector<std::uint8_t> b = a;
  b[1] ^= 0x10;
  EXPECT_NE(crc8(a), crc8(b));
}

}  // namespace
}  // namespace plc::frames
