#include <gtest/gtest.h>

#include "mme/ampstat.hpp"
#include "mme/header.hpp"
#include "mme/sniffer.hpp"
#include "util/error.hpp"

namespace plc::mme {
namespace {

const frames::MacAddress kHost = frames::MacAddress::parse("02:19:01:ff:ff:01");
const frames::MacAddress kDevice = frames::MacAddress::for_station(1);
const frames::MacAddress kPeer = frames::MacAddress::for_station(9);

// --- MMTYPE helpers ---------------------------------------------------------------

TEST(MmType, OperationEncoding) {
  EXPECT_EQ(mm_type(0xA030, MmeOp::kRequest), 0xA030);
  EXPECT_EQ(mm_type(0xA030, MmeOp::kConfirm), 0xA031);
  EXPECT_EQ(mm_type(0xA034, MmeOp::kIndication), 0xA036);
  EXPECT_EQ(mm_base(0xA031), 0xA030);
  EXPECT_EQ(mm_base(0xA036), 0xA034);
  EXPECT_EQ(mm_op(0xA033), MmeOp::kResponse);
}

// --- little-endian helpers ----------------------------------------------------------

TEST(LittleEndian, RoundTrip16And64) {
  std::vector<std::uint8_t> buffer(16, 0);
  put_le16(buffer, 1, 0xA030);
  EXPECT_EQ(buffer[1], 0x30);
  EXPECT_EQ(buffer[2], 0xA0);
  EXPECT_EQ(get_le16(buffer, 1), 0xA030);
  put_le64(buffer, 4, 0x1122334455667788ULL);
  EXPECT_EQ(buffer[4], 0x88);  // Least significant byte first.
  EXPECT_EQ(buffer[11], 0x11);
  EXPECT_EQ(get_le64(buffer, 4), 0x1122334455667788ULL);
}

TEST(LittleEndian, BoundsChecked) {
  std::vector<std::uint8_t> buffer(4, 0);
  EXPECT_THROW(put_le64(buffer, 0, 1), plc::Error);
  EXPECT_THROW(get_le16(buffer, 3), plc::Error);
}

// --- MME framing ----------------------------------------------------------------------

TEST(MmeFraming, EthernetRoundTrip) {
  Mme mme;
  mme.destination = kDevice;
  mme.source = kHost;
  mme.header.mmtype = 0xA031;
  mme.header.fmi = 0;
  mme.payload = {kVendorOui[0], kVendorOui[1], kVendorOui[2], 0x42};
  const frames::EthernetFrame frame = mme.to_ethernet();
  EXPECT_EQ(frame.ether_type, frames::kEtherTypeHomePlugAv);
  const Mme parsed = Mme::from_ethernet(frame);
  EXPECT_EQ(parsed.header.mmtype, 0xA031);
  EXPECT_TRUE(parsed.has_vendor_oui());
  EXPECT_EQ(parsed.destination, kDevice);
  EXPECT_EQ(parsed.source, kHost);
}

TEST(MmeFraming, MmTypeIsLittleEndianOnTheWire) {
  Mme mme;
  mme.header.mmtype = 0xA030;
  const frames::EthernetFrame frame = mme.to_ethernet();
  // Frame payload layout: [0]=MMV, [1..2]=MMTYPE little-endian.
  EXPECT_EQ(frame.payload[1], 0x30);
  EXPECT_EQ(frame.payload[2], 0xA0);
}

TEST(MmeFraming, RejectsWrongEtherTypeAndTruncation) {
  frames::EthernetFrame frame;
  frame.ether_type = frames::kEtherTypeIpv4;
  frame.payload.assign(32, 0);
  EXPECT_THROW(Mme::from_ethernet(frame), plc::Error);
}

// --- ampstat (0xA030) --------------------------------------------------------------------

TEST(AmpStat, RequestRoundTrip) {
  AmpStatRequest request;
  request.action = StatAction::kReset;
  request.direction = StatDirection::kRx;
  request.link_priority = frames::Priority::kCa2;
  request.peer = kPeer;
  const Mme mme = request.to_mme(kHost, kDevice);
  EXPECT_EQ(mme.header.mmtype, 0xA030);
  const auto parsed = AmpStatRequest::from_mme(mme);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->action, StatAction::kReset);
  EXPECT_EQ(parsed->direction, StatDirection::kRx);
  EXPECT_EQ(parsed->link_priority, frames::Priority::kCa2);
  EXPECT_EQ(parsed->peer, kPeer);
}

TEST(AmpStat, ConfirmRoundTrip) {
  AmpStatConfirm confirm;
  confirm.status = 0;
  confirm.direction = StatDirection::kTx;
  confirm.acknowledged = 162'220;
  confirm.collided = 12'012;
  confirm.fc_errors = 3;
  const Mme mme = confirm.to_mme(kDevice, kHost);
  EXPECT_EQ(mme.header.mmtype, 0xA031);
  const auto parsed = AmpStatConfirm::from_mme(mme);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->acknowledged, 162'220u);
  EXPECT_EQ(parsed->collided, 12'012u);
  EXPECT_EQ(parsed->fc_errors, 3u);
}

// The paper's exact parsing rule: "the bytes 25-32 of this reply represent
// the number of acknowledged frames and the bytes 33-40 represent the
// number of collided frames" — 1-based over the serialized Ethernet frame.
TEST(AmpStat, PaperByteOffsetsHoldOnTheWire) {
  AmpStatConfirm confirm;
  confirm.acknowledged = 0x1122334455667788ULL;
  confirm.collided = 0x99AABBCCDDEEFF00ULL;
  const std::vector<std::uint8_t> wire =
      confirm.to_mme(kDevice, kHost).to_ethernet().serialize();
  ASSERT_GE(wire.size(), 40u);
  // 1-based bytes 25..32 == 0-based offsets 24..31.
  std::uint64_t acked = 0;
  for (int i = 7; i >= 0; --i) {
    acked = acked << 8 | wire[AmpStatConfirm::kAckedFrameOffset +
                              static_cast<std::size_t>(i)];
  }
  std::uint64_t collided = 0;
  for (int i = 7; i >= 0; --i) {
    collided = collided << 8 | wire[AmpStatConfirm::kCollidedFrameOffset +
                                    static_cast<std::size_t>(i)];
  }
  EXPECT_EQ(AmpStatConfirm::kAckedFrameOffset, 24u);    // byte 25, 1-based
  EXPECT_EQ(AmpStatConfirm::kCollidedFrameOffset, 32u); // byte 33, 1-based
  EXPECT_EQ(acked, confirm.acknowledged);
  EXPECT_EQ(collided, confirm.collided);
}

TEST(AmpStat, FromMmeRejectsOtherTypes) {
  SnifferRequest sniffer;
  const Mme mme = sniffer.to_mme(kHost, kDevice);
  EXPECT_FALSE(AmpStatRequest::from_mme(mme).has_value());
  EXPECT_FALSE(AmpStatConfirm::from_mme(mme).has_value());
}

// --- sniffer (0xA034) -----------------------------------------------------------------------

TEST(Sniffer, RequestConfirmRoundTrip) {
  SnifferRequest request;
  request.enable = true;
  const auto parsed_req =
      SnifferRequest::from_mme(request.to_mme(kHost, kDevice));
  ASSERT_TRUE(parsed_req.has_value());
  EXPECT_TRUE(parsed_req->enable);

  SnifferConfirm confirm;
  confirm.enabled = true;
  const auto parsed_cnf =
      SnifferConfirm::from_mme(confirm.to_mme(kDevice, kHost));
  ASSERT_TRUE(parsed_cnf.has_value());
  EXPECT_TRUE(parsed_cnf->enabled);
  EXPECT_EQ(parsed_cnf->status, 0);
}

TEST(Sniffer, IndicationCarriesSofVerbatim) {
  SnifferIndication indication;
  indication.timestamp_10ns =
      SnifferIndication::to_timestamp_10ns(des::SimTime::from_us(123.45));
  indication.sof.src_tei = 5;
  indication.sof.dst_tei = 8;
  indication.sof.link_id = static_cast<std::uint8_t>(frames::Priority::kCa3);
  indication.sof.mpdu_cnt = 1;
  indication.sof.set_frame_duration(des::SimTime::from_us(1025.0));
  const auto parsed =
      SnifferIndication::from_mme(indication.to_mme(kDevice, kHost));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->sof.src_tei, 5);
  EXPECT_EQ(parsed->sof.dst_tei, 8);
  EXPECT_EQ(parsed->sof.priority(), frames::Priority::kCa3);
  EXPECT_EQ(parsed->sof.mpdu_cnt, 1);
  EXPECT_EQ(parsed->timestamp().ns(), des::SimTime::from_us(123.45).ns());
}

TEST(Sniffer, MmTypesMatchPaperOption) {
  // faifa activates sniffer mode "using the option 0xA034 for the MMType".
  SnifferRequest request;
  EXPECT_EQ(request.to_mme(kHost, kDevice).header.mmtype, 0xA034);
}

}  // namespace
}  // namespace plc::mme
