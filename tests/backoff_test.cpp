#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "dcf/dcf.hpp"
#include "mac/backoff.hpp"
#include "mac/config.hpp"
#include "util/error.hpp"

namespace plc::mac {
namespace {

Backoff1901 make_1901(std::uint64_t seed = 1,
                      BackoffConfig config = BackoffConfig::ca0_ca1()) {
  return Backoff1901(std::move(config), des::RandomStream(seed));
}

/// Drives the entity to a transmission attempt through idle slots;
/// returns the number of idle slots consumed.
int drain_to_attempt(BackoffEntity& entity, int limit = 100000) {
  int slots = 0;
  while (!entity.ready_to_transmit()) {
    entity.on_idle_slot();
    ++slots;
    if (slots > limit) ADD_FAILURE() << "entity never became ready";
  }
  return slots;
}

// --- Table 1 presets --------------------------------------------------------------

TEST(Config, Table1Ca0Ca1) {
  const BackoffConfig config = BackoffConfig::ca0_ca1();
  EXPECT_EQ(config.cw, (std::vector<int>{8, 16, 32, 64}));
  EXPECT_EQ(config.dc, (std::vector<int>{0, 1, 3, 15}));
}

TEST(Config, Table1Ca2Ca3) {
  const BackoffConfig config = BackoffConfig::ca2_ca3();
  EXPECT_EQ(config.cw, (std::vector<int>{8, 16, 16, 32}));
  EXPECT_EQ(config.dc, (std::vector<int>{0, 1, 3, 15}));
}

TEST(Config, ForPriorityMapsClasses) {
  EXPECT_EQ(BackoffConfig::for_priority(0).cw, BackoffConfig::ca0_ca1().cw);
  EXPECT_EQ(BackoffConfig::for_priority(1).cw, BackoffConfig::ca0_ca1().cw);
  EXPECT_EQ(BackoffConfig::for_priority(2).cw, BackoffConfig::ca2_ca3().cw);
  EXPECT_EQ(BackoffConfig::for_priority(3).cw, BackoffConfig::ca2_ca3().cw);
  EXPECT_THROW(BackoffConfig::for_priority(4), plc::Error);
}

TEST(Config, StageForBpcSaturatesAtLastStage) {
  const BackoffConfig config = BackoffConfig::ca0_ca1();
  EXPECT_EQ(config.stage_for_bpc(0), 0);
  EXPECT_EQ(config.stage_for_bpc(2), 2);
  EXPECT_EQ(config.stage_for_bpc(3), 3);
  EXPECT_EQ(config.stage_for_bpc(99), 3);
}

TEST(Config, ValidateRejectsBadShapes) {
  BackoffConfig config;
  EXPECT_THROW(config.validate(), plc::Error);  // Empty.
  config.cw = {8, 16};
  config.dc = {0};
  EXPECT_THROW(config.validate(), plc::Error);  // Length mismatch.
  config.dc = {0, -1};
  EXPECT_THROW(config.validate(), plc::Error);  // Negative dc.
  config.dc = {0, 1};
  config.cw = {8, 0};
  EXPECT_THROW(config.validate(), plc::Error);  // Zero window.
}

TEST(Config, DcfLikeDoublesWindowsAndDisablesDeferral) {
  const BackoffConfig config = BackoffConfig::dcf_like(16, 4);
  EXPECT_EQ(config.cw, (std::vector<int>{16, 32, 64, 128}));
  for (const int d : config.dc) EXPECT_EQ(d, kDeferralDisabled);
}

// --- Backoff1901 fundamentals ---------------------------------------------------------

TEST(Backoff1901Test, StartsAtStageZeroWithTable1Values) {
  Backoff1901 entity = make_1901();
  EXPECT_EQ(entity.stage(), 0);
  EXPECT_EQ(entity.contention_window(), 8);
  EXPECT_EQ(entity.deferral_counter(), 0);  // d_0 = 0.
  EXPECT_GE(entity.backoff_counter(), 0);
  EXPECT_LT(entity.backoff_counter(), 8);
}

TEST(Backoff1901Test, BcDrawAlwaysInWindow) {
  // Property: across many redraws at every stage, BC in {0, .., CW-1}.
  Backoff1901 entity = make_1901(77);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(entity.backoff_counter(), 0);
    EXPECT_LT(entity.backoff_counter(), entity.contention_window());
    drain_to_attempt(entity);
    entity.on_busy(true, /*success=*/i % 3 == 0);
  }
}

TEST(Backoff1901Test, IdleSlotsCountDownToTransmission) {
  Backoff1901 entity = make_1901();
  const int initial_bc = entity.backoff_counter();
  const int slots = drain_to_attempt(entity);
  EXPECT_EQ(slots, initial_bc);
  EXPECT_TRUE(entity.ready_to_transmit());
}

TEST(Backoff1901Test, SuccessRestartsAtStageZero) {
  Backoff1901 entity = make_1901();
  // Climb to a higher stage first via collisions.
  for (int i = 0; i < 3; ++i) {
    drain_to_attempt(entity);
    entity.on_busy(true, false);
  }
  EXPECT_GT(entity.stage(), 0);
  drain_to_attempt(entity);
  entity.on_busy(true, true);
  EXPECT_EQ(entity.stage(), 0);
  EXPECT_EQ(entity.contention_window(), 8);
}

TEST(Backoff1901Test, CollisionsClimbStagesAndSaturate) {
  Backoff1901 entity = make_1901();
  const std::vector<int> expected_cw = {16, 32, 64, 64, 64};
  for (std::size_t i = 0; i < expected_cw.size(); ++i) {
    drain_to_attempt(entity);
    entity.on_busy(true, false);
    EXPECT_EQ(entity.contention_window(), expected_cw[i])
        << "after collision " << i + 1;
  }
}

TEST(Backoff1901Test, DeferralExpiryJumpsWithoutTransmitting) {
  // Stage 0 has d_0 = 0: the *first* busy event already jumps the station
  // to stage 1 (the mechanism of Figure 1).
  Backoff1901 entity = make_1901();
  EXPECT_EQ(entity.deferral_counter(), 0);
  entity.on_busy(false, false);
  EXPECT_EQ(entity.stage(), 1);
  EXPECT_EQ(entity.contention_window(), 16);
  EXPECT_EQ(entity.deferral_counter(), 1);  // d_1 = 1.
}

TEST(Backoff1901Test, BusyDecrementsBothCounters) {
  // At stage 1 (d=1, CW=16) a busy event with DC>0 decrements BC and DC.
  Backoff1901 entity = make_1901(5);
  entity.on_busy(false, false);  // Jump to stage 1.
  ASSERT_EQ(entity.stage(), 1);
  // Ensure BC > 0 so the decrement is observable.
  while (entity.backoff_counter() == 0) {
    entity.on_busy(true, false);  // Won't happen: bc==0 means ready...
  }
  const int bc = entity.backoff_counter();
  const int dc = entity.deferral_counter();
  ASSERT_GT(dc, 0);
  entity.on_busy(false, false);
  EXPECT_EQ(entity.backoff_counter(), bc - 1);
  EXPECT_EQ(entity.deferral_counter(), dc - 1);
}

TEST(Backoff1901Test, DeferralChainFollowsTable1) {
  // Keep the medium busy forever; the station must climb 0->1->2->3 and
  // then keep re-entering stage 3, exactly per Table 1's d_i tolerances:
  // 1 busy at stage 0, 2 at stage 1 (d=1 tolerated + 1 jump), 4 at
  // stage 2, 16 at stage 3 per re-entry.
  Backoff1901 entity = make_1901(9);
  EXPECT_EQ(entity.stage(), 0);
  entity.on_busy(false, false);
  EXPECT_EQ(entity.stage(), 1);
  // Stage 1: needs d_1 + 1 = 2 busy events to jump (BC permitting).
  int busy_events = 0;
  while (entity.stage() == 1) {
    ASSERT_FALSE(entity.ready_to_transmit())
        << "BC expired before DC at this seed; test assumes otherwise";
    entity.on_busy(false, false);
    ++busy_events;
  }
  EXPECT_EQ(busy_events, 2);
  EXPECT_EQ(entity.stage(), 2);
}

TEST(Backoff1901Test, LastStageReentersItself) {
  Backoff1901 entity = make_1901(3);
  for (int i = 0; i < 4; ++i) {
    drain_to_attempt(entity);
    entity.on_busy(true, false);
  }
  EXPECT_EQ(entity.stage(), 3);
  // Sixteen tolerated busy events, then a jump that stays at stage 3.
  for (int i = 0; i < 200; ++i) {
    if (entity.ready_to_transmit()) {
      entity.on_busy(true, false);
    } else {
      entity.on_busy(false, false);
    }
    EXPECT_EQ(entity.stage(), 3);
  }
}

TEST(Backoff1901Test, StartNewFrameResets) {
  Backoff1901 entity = make_1901();
  for (int i = 0; i < 3; ++i) {
    drain_to_attempt(entity);
    entity.on_busy(true, false);
  }
  EXPECT_GT(entity.backoff_procedure_counter(), 1);
  entity.start_new_frame();
  EXPECT_EQ(entity.stage(), 0);
  EXPECT_EQ(entity.contention_window(), 8);
  EXPECT_EQ(entity.backoff_procedure_counter(), 1);  // One redraw done.
}

TEST(Backoff1901Test, OnIdleSlotWhenReadyIsAnError) {
  Backoff1901 entity = make_1901();
  drain_to_attempt(entity);
  EXPECT_THROW(entity.on_idle_slot(), plc::Error);
}

TEST(Backoff1901Test, TransmitWithNonzeroBcIsAnError) {
  Backoff1901 entity = make_1901(123);
  // Find a state with BC > 0.
  while (entity.backoff_counter() == 0) {
    entity.on_busy(true, true);
  }
  EXPECT_THROW(entity.on_busy(true, true), plc::Error);
}

TEST(Backoff1901Test, CustomSingleStageConfig) {
  BackoffConfig config;
  config.cw = {4};
  config.dc = {2};
  Backoff1901 entity(config, des::RandomStream(17));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(entity.stage(), 0);
    EXPECT_EQ(entity.contention_window(), 4);
    if (entity.ready_to_transmit()) {
      entity.on_busy(true, i % 2 == 0);
    } else {
      entity.on_busy(false, false);
    }
  }
}

// --- BackoffDcf ------------------------------------------------------------------------

TEST(BackoffDcfTest, FreezesDuringBusy) {
  BackoffDcf entity(16, 1024, des::RandomStream(2));
  while (entity.backoff_counter() == 0) {
    entity.on_busy(true, true);
  }
  const int bc = entity.backoff_counter();
  for (int i = 0; i < 10; ++i) entity.on_busy(false, false);
  EXPECT_EQ(entity.backoff_counter(), bc);  // 802.11: frozen, not drained.
}

TEST(BackoffDcfTest, CollisionDoublesWindowUpToMax) {
  BackoffDcf entity(16, 128, des::RandomStream(4));
  const std::vector<int> expected = {32, 64, 128, 128};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    drain_to_attempt(entity);
    entity.on_busy(true, false);
    EXPECT_EQ(entity.contention_window(), expected[i]);
  }
}

TEST(BackoffDcfTest, SuccessResetsToCwMin) {
  BackoffDcf entity(16, 1024, des::RandomStream(4));
  drain_to_attempt(entity);
  entity.on_busy(true, false);
  drain_to_attempt(entity);
  entity.on_busy(true, true);
  EXPECT_EQ(entity.contention_window(), 16);
  EXPECT_EQ(entity.stage(), 0);
}

TEST(BackoffDcfTest, DeferralCounterReportsDisabled) {
  BackoffDcf entity(16, 1024, des::RandomStream(4));
  EXPECT_EQ(entity.deferral_counter(), kDeferralDisabled);
}

TEST(BackoffDcfTest, FactoryAndPresets) {
  const dcf::DcfConfig config = dcf::DcfConfig::ieee80211ag();
  EXPECT_EQ(config.cw_min, 16);
  EXPECT_EQ(config.cw_max, 1024);
  auto entity = dcf::make_backoff(config, des::RandomStream(1));
  ASSERT_NE(entity, nullptr);
  EXPECT_EQ(entity->contention_window(), 16);
  EXPECT_EQ(dcf::DcfConfig::plc_window_no_deferral().cw_min, 8);
}

TEST(BackoffDcfTest, RejectsBadWindows) {
  EXPECT_THROW(BackoffDcf(0, 16, des::RandomStream(1)), plc::Error);
  EXPECT_THROW(BackoffDcf(32, 16, des::RandomStream(1)), plc::Error);
}

// --- Figure 1 mechanism: winner keeps small CW, loser climbs ---------------------------

TEST(Backoff1901Test, WinnerLoserAsymmetryOfFigure1) {
  // Station A wins twice in a row; B (sensing busy with d=0, then d=1)
  // must sit at a higher stage with a larger CW — the short-term
  // unfairness mechanism the paper's Figure 1 illustrates.
  Backoff1901 a = make_1901(100);
  Backoff1901 b = make_1901(200);
  // A counts down and transmits; B senses the busy medium.
  drain_to_attempt(a);
  a.on_busy(true, true);
  b.on_busy(false, false);
  EXPECT_EQ(a.stage(), 0);
  EXPECT_EQ(b.stage(), 1);
  drain_to_attempt(a);
  a.on_busy(true, true);
  b.on_busy(false, false);
  EXPECT_EQ(a.contention_window(), 8);
  EXPECT_GE(b.stage(), 1);
  EXPECT_GE(b.contention_window(), 16);
}

}  // namespace
}  // namespace plc::mac
