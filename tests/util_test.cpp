#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/math.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace plc::util {
namespace {

// --- error ------------------------------------------------------------------

TEST(Error, RequirePassesOnTrue) {
  EXPECT_NO_THROW(require(true, "never"));
}

TEST(Error, RequireThrowsWithMessage) {
  try {
    require(false, "the message");
    FAIL() << "expected plc::Error";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "the message");
  }
}

TEST(Error, CheckArgPrefixesArgumentName) {
  try {
    check_arg(false, "cw", "must be positive");
    FAIL() << "expected plc::Error";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "invalid argument 'cw': must be positive");
  }
}

// --- math: binomial ----------------------------------------------------------

TEST(Binomial, LogFactorialMatchesSmallValues) {
  EXPECT_DOUBLE_EQ(log_factorial(0), 0.0);
  EXPECT_DOUBLE_EQ(log_factorial(1), 0.0);
  EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-12);
  EXPECT_NEAR(log_factorial(10), std::log(3628800.0), 1e-9);
}

TEST(Binomial, CoefficientMatchesPascal) {
  EXPECT_NEAR(std::exp(log_binomial_coefficient(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(10, 5)), 252.0, 1e-9);
  EXPECT_EQ(log_binomial_coefficient(5, 6),
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(log_binomial_coefficient(5, -1),
            -std::numeric_limits<double>::infinity());
}

TEST(Binomial, PmfSumsToOne) {
  for (const double p : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    for (const int n : {0, 1, 5, 20, 100}) {
      double sum = 0.0;
      for (int k = 0; k <= n; ++k) sum += binomial_pmf(n, k, p);
      EXPECT_NEAR(sum, 1.0, 1e-9) << "n=" << n << " p=" << p;
    }
  }
}

TEST(Binomial, PmfDegenerateP) {
  EXPECT_DOUBLE_EQ(binomial_pmf(7, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(7, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(7, 7, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(7, 6, 1.0), 0.0);
}

TEST(Binomial, CdfBoundaries) {
  EXPECT_DOUBLE_EQ(binomial_cdf(10, -1, 0.3), 0.0);
  EXPECT_DOUBLE_EQ(binomial_cdf(10, 10, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(binomial_cdf(10, 99, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(binomial_cdf(0, 0, 0.3), 1.0);
}

TEST(Binomial, CdfMonotoneInK) {
  double previous = 0.0;
  for (int k = 0; k <= 20; ++k) {
    const double value = binomial_cdf(20, k, 0.35);
    EXPECT_GE(value, previous - 1e-15);
    previous = value;
  }
}

TEST(Binomial, CdfDecreasingInP) {
  double previous = 1.0;
  for (double p = 0.0; p <= 1.0; p += 0.05) {
    const double value = binomial_cdf(30, 7, p);
    EXPECT_LE(value, previous + 1e-12);
    previous = value;
  }
}

TEST(Binomial, LargeNStaysFinite) {
  const double value = binomial_cdf(100000, 15, 0.2);
  EXPECT_GE(value, 0.0);
  EXPECT_LE(value, 1.0);
  EXPECT_FALSE(std::isnan(value));
}

TEST(Binomial, RejectsInvalidArguments) {
  EXPECT_THROW(binomial_pmf(-1, 0, 0.5), Error);
  EXPECT_THROW(binomial_pmf(5, 0, -0.1), Error);
  EXPECT_THROW(binomial_cdf(5, 0, 1.1), Error);
}

// --- math: bisect -------------------------------------------------------------

TEST(Bisect, FindsSqrtTwo) {
  const double root =
      bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(root, std::sqrt(2.0), 1e-10);
}

TEST(Bisect, HandlesRootAtBracketEnd) {
  EXPECT_DOUBLE_EQ(bisect([](double x) { return x; }, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(bisect([](double x) { return x - 1.0; }, 0.0, 1.0), 1.0);
}

TEST(Bisect, DecreasingFunction) {
  const double root =
      bisect([](double x) { return 1.0 - x * x * x; }, 0.0, 2.0);
  EXPECT_NEAR(root, 1.0, 1e-10);
}

// --- math: jain ----------------------------------------------------------------

TEST(Jain, PerfectFairnessIsOne) {
  EXPECT_DOUBLE_EQ(jain_index({3.0, 3.0, 3.0, 3.0}), 1.0);
}

TEST(Jain, MonopolyIsOneOverN) {
  EXPECT_NEAR(jain_index({10.0, 0.0, 0.0, 0.0, 0.0}), 0.2, 1e-12);
}

TEST(Jain, EmptyAndZeroAreFair) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0}), 1.0);
}

TEST(Jain, ScaleInvariant) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> scaled;
  for (const double v : x) scaled.push_back(v * 7.5);
  EXPECT_NEAR(jain_index(x), jain_index(scaled), 1e-12);
}

// --- csv -------------------------------------------------------------------------

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter writer(out, {"n", "value"});
  writer.write_row(std::vector<std::string>{"1", "2.5"});
  EXPECT_EQ(out.str(), "n,value\n1,2.5\n");
  EXPECT_EQ(writer.rows_written(), 1);
}

TEST(Csv, QuotesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::quote("plain"), "plain");
  EXPECT_EQ(CsvWriter::quote("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::quote("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::quote("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, QuotesRfc4180Corners) {
  // CR alone, CRLF, and a bare LF all force quoting (RFC 4180 wraps any
  // cell containing a line break); embedded quotes are doubled; the empty
  // cell needs no quoting and stays empty.
  EXPECT_EQ(CsvWriter::quote("carriage\rreturn"), "\"carriage\rreturn\"");
  EXPECT_EQ(CsvWriter::quote("dos\r\nline"), "\"dos\r\nline\"");
  EXPECT_EQ(CsvWriter::quote("\"\""), "\"\"\"\"\"\"");
  EXPECT_EQ(CsvWriter::quote(""), "");
  EXPECT_EQ(CsvWriter::quote("\""), "\"\"\"\"");
}

TEST(Csv, RejectsWrongWidth) {
  std::ostringstream out;
  CsvWriter writer(out, {"a", "b"});
  EXPECT_THROW(writer.write_row(std::vector<std::string>{"only-one"}),
               Error);
  // Too wide fails as well, and so does the numeric overload (it funnels
  // through the same width check).
  EXPECT_THROW(
      writer.write_row(std::vector<std::string>{"1", "2", "3"}), Error);
  EXPECT_THROW(writer.write_row(std::vector<double>{1.0}), Error);
  // The failed rows were not counted.
  EXPECT_EQ(writer.rows_written(), 0);
}

TEST(Csv, NumericRowsRoundTrip) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row(std::vector<double>{2920.64, 35.84});
  EXPECT_EQ(out.str(), "2920.64,35.84\n");
}

// --- strings ----------------------------------------------------------------------

TEST(Strings, FormatDoubleTrimsZeros) {
  EXPECT_EQ(format_double(2920.64), "2920.64");
  EXPECT_EQ(format_double(1.0), "1");
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(format_fixed(0.07415, 4), "0.0741");
  EXPECT_EQ(format_fixed(1.0, 2), "1.00");
}

TEST(Strings, ToHex) {
  const std::uint8_t bytes[] = {0x00, 0xB0, 0x52};
  EXPECT_EQ(to_hex(bytes), "00b052");
  EXPECT_EQ(to_hex(bytes, ':'), "00:b0:52");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
}

TEST(Strings, WithThousands) {
  EXPECT_EQ(with_thousands(162220), "162,220");
  EXPECT_EQ(with_thousands(-1234567), "-1,234,567");
  EXPECT_EQ(with_thousands(42), "42");
}

// --- stats ------------------------------------------------------------------------

TEST(RunningStats, MeanAndVariance) {
  RunningStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(v);
  }
  EXPECT_EQ(stats.count(), 8);
  EXPECT_NEAR(stats.mean(), 5.0, 1e-12);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i * 0.7) * 10.0;
    all.add(v);
    (i < 37 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
}

TEST(RunningStats, EmptyIsZero) {
  const RunningStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, SumTracksSamples) {
  RunningStats stats;
  EXPECT_DOUBLE_EQ(stats.sum(), 0.0);
  stats.add(1.5);
  stats.add(-0.5);
  stats.add(4.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 5.0);
  EXPECT_NEAR(stats.sum() / static_cast<double>(stats.count()),
              stats.mean(), 1e-12);
}

TEST(RunningStats, MergeEmptyIntoEmpty) {
  RunningStats a;
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.sum(), 0.0);
}

TEST(RunningStats, MergeWithEmptyEitherWay) {
  RunningStats filled;
  filled.add(3.0);
  filled.add(5.0);

  RunningStats left = filled;
  left.merge(RunningStats{});  // non-empty ⊕ empty: unchanged.
  EXPECT_EQ(left.count(), 2);
  EXPECT_NEAR(left.mean(), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), 3.0);
  EXPECT_DOUBLE_EQ(left.max(), 5.0);
  EXPECT_DOUBLE_EQ(left.sum(), 8.0);

  RunningStats right;  // empty ⊕ non-empty: adopts other's state.
  right.merge(filled);
  EXPECT_EQ(right.count(), 2);
  EXPECT_NEAR(right.mean(), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(right.min(), 3.0);
  EXPECT_DOUBLE_EQ(right.max(), 5.0);
  EXPECT_DOUBLE_EQ(right.sum(), 8.0);
}

TEST(RunningStats, MergeSingletonsKeepsMinMax) {
  RunningStats low;
  low.add(-2.0);
  RunningStats high;
  high.add(10.0);
  low.merge(high);
  EXPECT_EQ(low.count(), 2);
  EXPECT_DOUBLE_EQ(low.min(), -2.0);
  EXPECT_DOUBLE_EQ(low.max(), 10.0);
  EXPECT_NEAR(low.mean(), 4.0, 1e-12);
  EXPECT_NEAR(low.variance(), 72.0, 1e-9);  // Sample variance of {-2, 10}.
}

TEST(Quantiles, MedianAndInterpolation) {
  QuantileEstimator q;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) q.add(v);
  EXPECT_NEAR(q.median(), 2.5, 1e-12);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 4.0);
}

TEST(Quantiles, RejectsEmptyAndOutOfRange) {
  QuantileEstimator q;
  EXPECT_THROW(q.quantile(0.5), Error);
  q.add(1.0);
  EXPECT_THROW(q.quantile(1.5), Error);
  EXPECT_THROW(q.quantile(-0.5), Error);
}

TEST(Quantiles, InterleavedAddAndQueryResorts) {
  // Regression for the const-mutation hazard: quantile() used to sort a
  // `mutable` sample vector inside a const method. Now that queries are
  // honestly non-const, interleaving add() and quantile() must keep
  // answers consistent with the full sample set at each query.
  QuantileEstimator q;
  q.add(5.0);
  q.add(1.0);
  EXPECT_NEAR(q.median(), 3.0, 1e-12);
  q.add(9.0);  // Invalidates the cached sort.
  EXPECT_DOUBLE_EQ(q.median(), 5.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 9.0);
  q.add(0.0);
  q.add(2.0);
  EXPECT_DOUBLE_EQ(q.median(), 2.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 0.0);
  EXPECT_EQ(q.count(), 5);
}

// --- table -------------------------------------------------------------------------

TEST(Table, AlignsColumns) {
  TablePrinter table({"N", "collision"});
  table.add_row(std::vector<std::string>{"1", "0.0002"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| N | collision |"), std::string::npos);
  EXPECT_NE(text.find("| 1 | 0.0002    |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 1);
}

TEST(Table, RejectsWideRows) {
  TablePrinter table({"only"});
  EXPECT_THROW(table.add_row(std::vector<std::string>{"a", "b"}), Error);
}

TEST(Table, CsvExportQuotesAndAligns) {
  TablePrinter table({"name", "value"});
  table.add_row(std::vector<std::string>{"a,b", "1"});
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_EQ(out.str(), "name,value\n\"a,b\",1\n");
}

}  // namespace
}  // namespace plc::util
