#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "emu/device.hpp"
#include "emu/network.hpp"
#include "mme/sniffer.hpp"
#include "util/error.hpp"
#include "workload/sources.hpp"

namespace plc::emu {
namespace {

frames::EthernetFrame data_frame(const HpavDevice& from,
                                 const HpavDevice& to, int payload_bytes,
                                 std::uint8_t fill = 0x77) {
  frames::EthernetFrame frame;
  frame.destination = to.mac();
  frame.source = from.mac();
  frame.ether_type = frames::kEtherTypeIpv4;
  frame.payload.assign(static_cast<std::size_t>(payload_bytes), fill);
  return frame;
}

// --- FirmwareCounters -----------------------------------------------------------

TEST(Counters, AckedIncludesCollided) {
  FirmwareCounters counters;
  const frames::MacAddress peer = frames::MacAddress::for_station(9);
  counters.on_tx_acked(peer, frames::Priority::kCa1, 10);
  counters.on_tx_collided(peer, frames::Priority::kCa1, 4);
  const LinkCounters link =
      counters.read(peer, frames::Priority::kCa1, mme::StatDirection::kTx);
  EXPECT_EQ(link.acknowledged, 14u);  // 10 clean + 4 collided-but-acked.
  EXPECT_EQ(link.collided, 4u);
}

TEST(Counters, LinksAreIndependent) {
  FirmwareCounters counters;
  const frames::MacAddress a = frames::MacAddress::for_station(1);
  const frames::MacAddress b = frames::MacAddress::for_station(2);
  counters.on_tx_acked(a, frames::Priority::kCa1, 5);
  counters.on_tx_acked(b, frames::Priority::kCa1, 7);
  counters.on_tx_acked(a, frames::Priority::kCa2, 3);
  counters.on_rx_acked(a, frames::Priority::kCa1, 2);
  EXPECT_EQ(counters.read(a, frames::Priority::kCa1,
                          mme::StatDirection::kTx).acknowledged, 5u);
  EXPECT_EQ(counters.read(b, frames::Priority::kCa1,
                          mme::StatDirection::kTx).acknowledged, 7u);
  EXPECT_EQ(counters.read(a, frames::Priority::kCa2,
                          mme::StatDirection::kTx).acknowledged, 3u);
  EXPECT_EQ(counters.read(a, frames::Priority::kCa1,
                          mme::StatDirection::kRx).acknowledged, 2u);
  EXPECT_EQ(counters.tx_totals().acknowledged, 15u);
}

TEST(Counters, ResetClearsEverything) {
  FirmwareCounters counters;
  const frames::MacAddress peer = frames::MacAddress::for_station(9);
  counters.on_tx_collided(peer, frames::Priority::kCa1, 4);
  counters.reset_all();
  EXPECT_EQ(counters.tx_totals().acknowledged, 0u);
  EXPECT_EQ(counters.read(peer, frames::Priority::kCa1,
                          mme::StatDirection::kTx).collided, 0u);
}

// --- Device data path -----------------------------------------------------------------

TEST(Device, DeliversDataFramesEndToEnd) {
  Network network(1);
  HpavDevice& sender = network.add_device();
  HpavDevice& receiver = network.add_device();
  std::vector<frames::EthernetFrame> received;
  receiver.set_host_receive([&](const frames::EthernetFrame& frame) {
    if (frame.ether_type == frames::kEtherTypeIpv4) {
      received.push_back(frame);
    }
  });
  network.start();
  for (int i = 0; i < 50; ++i) {
    sender.host_send(
        data_frame(sender, receiver, 800, static_cast<std::uint8_t>(i)));
  }
  network.run_for(des::SimTime::from_seconds(1.0));
  ASSERT_EQ(received.size(), 50u);
  for (std::size_t i = 0; i < received.size(); ++i) {
    EXPECT_EQ(received[i].payload[0], static_cast<std::uint8_t>(i));
    EXPECT_EQ(received[i].payload.size(), 800u);
    EXPECT_EQ(received[i].source, sender.mac());
  }
  EXPECT_EQ(receiver.host_frames_delivered(), 50);
}

TEST(Device, SmallFrameShipsAfterAggregationTimeout) {
  Network network(2);
  HpavDevice& sender = network.add_device();
  HpavDevice& receiver = network.add_device();
  int received = 0;
  receiver.set_host_receive([&](const frames::EthernetFrame& frame) {
    if (frame.ether_type == frames::kEtherTypeIpv4) ++received;
  });
  network.start();
  // 100 bytes: far less than one physical block.
  sender.host_send(data_frame(sender, receiver, 100));
  network.run_for(des::SimTime::from_us(200.0));
  EXPECT_EQ(received, 0);  // Still waiting for the aggregation timeout.
  network.run_for(des::SimTime::from_seconds(0.1));
  EXPECT_EQ(received, 1);
}

TEST(Device, CountersMatchDomainGroundTruth) {
  Network network(3);
  HpavDevice& a = network.add_device();
  HpavDevice& b = network.add_device();
  HpavDevice& d = network.add_device();
  network.start();
  // Saturate both senders toward d.
  workload::FrameTemplate ta;
  ta.destination = d.mac();
  ta.source = a.mac();
  workload::SaturatedSource sa(network.scheduler(), ta,
                               [&a](frames::EthernetFrame f) {
                                 a.host_send(f);
                                 return a.tx_backlog_pbs();
                               },
                               128);
  workload::FrameTemplate tb = ta;
  tb.source = b.mac();
  workload::SaturatedSource sb(network.scheduler(), tb,
                               [&b](frames::EthernetFrame f) {
                                 b.host_send(f);
                                 return b.tx_backlog_pbs();
                               },
                               128);
  sa.start();
  sb.start();
  network.run_for(des::SimTime::from_seconds(5.0));

  const medium::DomainStats& stats = network.domain().stats();
  EXPECT_GT(stats.collision_events, 0);
  const LinkCounters ca = a.counters().tx_totals();
  const LinkCounters cb = b.counters().tx_totals();
  // MPDU-level firmware counters match the medium's MPDU accounting up to
  // one in-flight burst: the domain counts at exchange start, the
  // firmware at exchange completion, and the run may stop in between.
  const auto near_eq = [](std::uint64_t lhs, std::uint64_t rhs) {
    const std::uint64_t diff = lhs > rhs ? lhs - rhs : rhs - lhs;
    EXPECT_LE(diff, 2u) << lhs << " vs " << rhs;
  };
  near_eq(ca.acknowledged + cb.acknowledged,
          static_cast<std::uint64_t>(stats.success_mpdus +
                                     stats.collided_mpdus));
  near_eq(ca.collided + cb.collided,
          static_cast<std::uint64_t>(stats.collided_mpdus));
  // Receive side: the destination acked both kinds.
  const LinkCounters rx_a = d.counters().read(
      a.mac(), frames::Priority::kCa1, mme::StatDirection::kRx);
  EXPECT_EQ(rx_a.acknowledged, ca.acknowledged);
  EXPECT_EQ(rx_a.collided, ca.collided);
}

TEST(Device, BurstsHaveUniformShapeUnderSaturation) {
  Network network(4);
  HpavDevice& sender = network.add_device();
  HpavDevice& receiver = network.add_device();
  // Observe burst shapes via the medium records.
  struct Tap : medium::MediumObserver {
    std::vector<int> burst_sizes;
    void on_medium_event(const medium::MediumEventRecord& record) override {
      if (record.type == medium::MediumEventType::kSuccess) {
        burst_sizes.push_back(static_cast<int>(record.sofs.size()));
      }
    }
  } tap;
  network.domain().add_observer(tap);
  workload::FrameTemplate t;
  t.destination = receiver.mac();
  t.source = sender.mac();
  workload::SaturatedSource source(network.scheduler(), t,
                                   [&sender](frames::EthernetFrame f) {
                                     sender.host_send(f);
                                     return sender.tx_backlog_pbs();
                                   },
                                   128);
  network.start();
  source.start();
  network.run_for(des::SimTime::from_seconds(2.0));
  ASSERT_GT(tap.burst_sizes.size(), 100u);
  for (const int size : tap.burst_sizes) {
    EXPECT_EQ(size, 2);  // The paper's measured burst size.
  }
}

TEST(Device, MpduCntCountsDown) {
  Network network(5);
  HpavDevice& sender = network.add_device();
  HpavDevice& receiver = network.add_device();
  struct Tap : medium::MediumObserver {
    std::vector<frames::SofDelimiter> sofs;
    void on_medium_event(const medium::MediumEventRecord& record) override {
      sofs.insert(sofs.end(), record.sofs.begin(), record.sofs.end());
    }
  } tap;
  network.domain().add_observer(tap);
  network.start();
  for (int i = 0; i < 64; ++i) {
    sender.host_send(data_frame(sender, receiver, 1400));
  }
  network.run_for(des::SimTime::from_seconds(1.0));
  ASSERT_GE(tap.sofs.size(), 2u);
  // Within each burst the MPDUCnt field counts remaining MPDUs down to 0.
  for (std::size_t i = 0; i < tap.sofs.size(); ++i) {
    if (tap.sofs[i].mpdu_cnt > 0) {
      ASSERT_LT(i + 1, tap.sofs.size());
      EXPECT_EQ(tap.sofs[i + 1].mpdu_cnt, tap.sofs[i].mpdu_cnt - 1);
      EXPECT_EQ(tap.sofs[i + 1].src_tei, tap.sofs[i].src_tei);
    }
  }
}

// --- Fixed tone-map durations (non-adaptation PHY-rate mode) --------------------------------

TEST(Device, FixedToneMapSetsFrameDurations) {
  Network network(42);
  DeviceConfig config;
  config.tonemap = phy::ToneMap::high_rate();
  HpavDevice& sender = network.add_device(config);
  HpavDevice& receiver = network.add_device(config);
  struct Tap : medium::MediumObserver {
    std::vector<frames::SofDelimiter> sofs;
    void on_medium_event(const medium::MediumEventRecord& record) override {
      sofs.insert(sofs.end(), record.sofs.begin(), record.sofs.end());
    }
  } tap;
  network.domain().add_observer(tap);
  network.start();
  for (int i = 0; i < 32; ++i) {
    sender.host_send(data_frame(sender, receiver, 1400));
  }
  network.run_for(des::SimTime::from_seconds(1.0));
  ASSERT_FALSE(tap.sofs.empty());
  // Full MPDUs carry 16 PBs: the on-wire duration must be the tone map's
  // figure for 16 x 512 bytes (rounded up to the SoF field unit).
  const des::SimTime expected =
      phy::ToneMap::high_rate().frame_duration(16);
  bool saw_full_mpdu = false;
  for (const frames::SofDelimiter& sof : tap.sofs) {
    if (sof.pb_count == 16) {
      saw_full_mpdu = true;
      EXPECT_GE(sof.frame_duration(), expected);
      EXPECT_LT((sof.frame_duration() - expected).ns(),
                frames::kFrameLengthUnitNs);
    }
  }
  EXPECT_TRUE(saw_full_mpdu);
}

// --- Channel errors and selective retransmission ------------------------------------------

TEST(Device, PbErrorsAreRepairedBySelectiveRetransmission) {
  Network network(6);
  DeviceConfig lossy;
  lossy.pb_error_rate = 0.2;
  HpavDevice& sender = network.add_device(lossy);
  HpavDevice& receiver = network.add_device(lossy);
  std::vector<frames::EthernetFrame> received;
  receiver.set_host_receive([&](const frames::EthernetFrame& frame) {
    if (frame.ether_type == frames::kEtherTypeIpv4) {
      received.push_back(frame);
    }
  });
  network.start();
  for (int i = 0; i < 100; ++i) {
    sender.host_send(
        data_frame(sender, receiver, 900, static_cast<std::uint8_t>(i)));
  }
  network.run_for(des::SimTime::from_seconds(5.0));
  // Every frame eventually arrives, in order, despite 20% PB loss.
  ASSERT_EQ(received.size(), 100u);
  for (std::size_t i = 0; i < received.size(); ++i) {
    EXPECT_EQ(received[i].payload[0], static_cast<std::uint8_t>(i));
  }
}

// --- Sniffer ---------------------------------------------------------------------------------

TEST(Device, SnifferReportsAllDelimitersIncludingCollisions) {
  Network network(7);
  HpavDevice& a = network.add_device();
  HpavDevice& b = network.add_device();
  HpavDevice& d = network.add_device();
  int indications = 0;
  d.set_host_receive([&](const frames::EthernetFrame& frame) {
    if (frame.ether_type != frames::kEtherTypeHomePlugAv) return;
    if (mme::SnifferIndication::from_mme(mme::Mme::from_ethernet(frame))) {
      ++indications;
    }
  });
  // Enable sniffing via the MME path.
  mme::SnifferRequest enable;
  enable.enable = true;
  d.host_send(enable
                  .to_mme(frames::MacAddress::parse("02:19:01:ff:ff:02"),
                          d.mac())
                  .to_ethernet());
  EXPECT_TRUE(d.sniffer_enabled());

  network.start();
  for (int i = 0; i < 32; ++i) {
    a.host_send(data_frame(a, d, 1400));
    b.host_send(data_frame(b, d, 1400));
  }
  network.run_for(des::SimTime::from_seconds(1.0));
  const medium::DomainStats& stats = network.domain().stats();
  EXPECT_EQ(indications,
            static_cast<int>(stats.success_mpdus + stats.collided_mpdus));
}

// --- Priorities ---------------------------------------------------------------------------

TEST(Device, MmeTrafficPreemptsDataTraffic) {
  Network network(8);
  HpavDevice& sender = network.add_device();
  HpavDevice& peer = network.add_device();
  struct Tap : medium::MediumObserver {
    std::vector<frames::Priority> priorities;
    void on_medium_event(const medium::MediumEventRecord& record) override {
      if (record.type == medium::MediumEventType::kSuccess) {
        priorities.push_back(record.priority);
      }
    }
  } tap;
  network.domain().add_observer(tap);
  network.start();
  // Queue plenty of CA1 data, then one management frame at CA2.
  for (int i = 0; i < 64; ++i) {
    sender.host_send(data_frame(sender, peer, 1400));
  }
  frames::EthernetFrame mme_frame;
  mme_frame.destination = peer.mac();
  mme_frame.source = sender.mac();
  mme_frame.ether_type = frames::kEtherTypeHomePlugAv;
  mme_frame.payload.assign(100, 0);
  sender.host_send(mme_frame);
  network.run_for(des::SimTime::from_seconds(1.0));
  ASSERT_GT(tap.priorities.size(), 2u);
  // The management frame (CA2) wins the first contention despite the
  // queued CA1 backlog.
  EXPECT_EQ(tap.priorities.front(), frames::Priority::kCa2);
}

// --- Config validation -----------------------------------------------------------------------

TEST(Device, RejectsInvalidConfig) {
  Network network(9);
  DeviceConfig bad;
  bad.burst_mpdus = 5;
  EXPECT_THROW(network.add_device(bad), plc::Error);
  bad = DeviceConfig{};
  bad.pb_error_rate = 1.5;
  EXPECT_THROW(network.add_device(bad), plc::Error);
}

TEST(Device, RejectsUnknownDestination) {
  Network network(10);
  HpavDevice& sender = network.add_device();
  frames::EthernetFrame frame;
  frame.destination = frames::MacAddress::parse("aa:bb:cc:dd:ee:ff");
  frame.source = sender.mac();
  frame.ether_type = frames::kEtherTypeIpv4;
  frame.payload.assign(100, 0);
  EXPECT_THROW(sender.host_send(frame), plc::Error);
}

// --- Network -----------------------------------------------------------------------------------

TEST(NetworkTest, AssignsDenseTeisAndMacs) {
  Network network(11);
  HpavDevice& first = network.add_device();
  HpavDevice& second = network.add_device();
  EXPECT_EQ(first.tei(), 1);
  EXPECT_EQ(second.tei(), 2);
  EXPECT_EQ(network.device_by_tei(1), &first);
  EXPECT_EQ(network.device_by_mac(second.mac()), &second);
  EXPECT_EQ(network.device_by_tei(3), nullptr);
  EXPECT_EQ(network.device_count(), 2);
}

TEST(NetworkTest, CannotAddDevicesAfterStart) {
  Network network(12);
  network.add_device();
  network.start();
  EXPECT_THROW(network.add_device(), plc::Error);
  EXPECT_THROW(network.start(), plc::Error);
}

}  // namespace
}  // namespace plc::emu
