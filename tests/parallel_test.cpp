// The determinism contract of the parallel layer: the thread pool's
// barrier/exception semantics, counter-based seed derivation, and the
// headline guarantee — ParallelRunner and run_testbed_suite produce
// bit-identical results for any --jobs count, including against the
// serial loops they replace.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "des/random.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "sim/parallel_runner.hpp"
#include "sim/runner.hpp"
#include "tools/testbed.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace plc {
namespace {

// --- ThreadPool ---------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTaskBeforeWaitReturns) {
  util::ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(57);
  pool.parallel_for(57, [&hits](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, WaitRethrowsFirstTaskExceptionAndPoolStaysUsable) {
  util::ThreadPool pool(2);
  pool.submit([] { throw plc::Error("task failed"); });
  EXPECT_THROW(pool.wait(), plc::Error);
  // The error was cleared; the next batch runs normally.
  std::atomic<int> done{0};
  pool.submit([&done] { done.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(done.load(), 1);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    util::ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
    // No wait(): shutdown must still run every queued task.
  }
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, OnWorkerStartRunsOncePerWorker) {
  std::mutex mutex;
  std::set<int> seen;
  util::ThreadPool pool(3, [&](int worker) {
    std::lock_guard<std::mutex> lock(mutex);
    seen.insert(worker);
  });
  EXPECT_EQ(pool.size(), 3);
  // Workers check in asynchronously; poll until all three have (the hook
  // runs before the worker loop, so a bounded wait suffices).
  for (int i = 0; i < 5000; ++i) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (seen.size() == 3) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::lock_guard<std::mutex> lock(mutex);
  EXPECT_EQ(seen, (std::set<int>{0, 1, 2}));
}

TEST(ThreadPool, ResolveJobsDefaultsToHardwareAndPassesPositive) {
  EXPECT_EQ(util::ThreadPool::resolve_jobs(5), 5);
  EXPECT_GE(util::ThreadPool::resolve_jobs(0), 1);
  EXPECT_GE(util::ThreadPool::resolve_jobs(-3), 1);
}

// --- Seed derivation ----------------------------------------------------

TEST(TaskSeed, PinnedValues) {
  // Pinned: these are the streams every sweep ever run has used; changing
  // the derivation silently invalidates all recorded experiment numbers.
  EXPECT_EQ(des::derive_task_seed(0x1901, 0, 0), 0x40469cdd34a829caULL);
  EXPECT_EQ(des::derive_task_seed(0x1901, 3, 7), 0x1a51596afbf7474aULL);
  EXPECT_EQ(des::derive_task_seed(0xBEEF, 12, 345), 0xec484f99129af6c4ULL);
}

TEST(TaskSeed, NoCollisionsAcrossADenseGrid) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t root : {0x1901ULL, 0xBEEFULL, 0x0ULL}) {
    for (std::uint64_t point = 0; point < 64; ++point) {
      for (std::uint64_t rep = 0; rep < 64; ++rep) {
        seeds.insert(des::derive_task_seed(root, point, rep));
      }
    }
  }
  EXPECT_EQ(seeds.size(), 3u * 64u * 64u);
}

TEST(TaskSeed, PointAndRepAreNotInterchangeable) {
  // (point, rep) must not alias (rep, point) — a transposed grid would
  // silently reuse streams.
  EXPECT_NE(des::derive_task_seed(0x1901, 2, 5),
            des::derive_task_seed(0x1901, 5, 2));
}

// --- ParallelRunner vs the serial runner --------------------------------

sim::RunSpec small_spec(int stations, int repetitions) {
  sim::RunSpec spec;
  spec.stations = stations;
  spec.duration = des::SimTime::from_seconds(0.5);
  spec.repetitions = repetitions;
  spec.seed = 0xD37E;
  return spec;
}

void expect_identical(const sim::RunSummary& a, const sim::RunSummary& b) {
  EXPECT_EQ(a.medium_events, b.medium_events);
  EXPECT_EQ(a.simulated.ns(), b.simulated.ns());
  EXPECT_EQ(a.collision_probability.mean(), b.collision_probability.mean());
  EXPECT_EQ(a.collision_probability.stddev(),
            b.collision_probability.stddev());
  EXPECT_EQ(a.normalized_throughput.mean(), b.normalized_throughput.mean());
  EXPECT_EQ(a.normalized_throughput.stddev(),
            b.normalized_throughput.stddev());
  EXPECT_EQ(a.jain_index.mean(), b.jain_index.mean());
}

TEST(ParallelRunner, BitIdenticalToSerialRunPoint) {
  const sim::RunSpec spec = small_spec(3, 5);
  const sim::RunSummary serial = sim::run_point(spec);
  for (const int jobs : {1, 2, 8}) {
    sim::ParallelRunner runner(jobs);
    expect_identical(runner.run_point(spec), serial);
  }
}

TEST(ParallelRunner, RunPointsMatchesSerialLoopPerSpec) {
  std::vector<sim::RunSpec> specs;
  for (const int n : {2, 3, 4}) specs.push_back(small_spec(n, 3));
  sim::ParallelRunner runner(4);
  const std::vector<sim::RunSummary> summaries = runner.run_points(specs);
  ASSERT_EQ(summaries.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_identical(summaries[i], sim::run_point(specs[i]));
  }
}

TEST(ParallelRunner, ReportsAreByteIdenticalAcrossJobsCounts) {
  const sim::RunSpec spec = small_spec(3, 4);
  std::vector<std::string> serialized;
  for (const int jobs : {1, 2, 8}) {
    sim::ParallelRunner runner(jobs);
    obs::RunReport report = runner.run_point_report(spec, "determinism");
    // Wall-clock fields are the only legitimate jobs-dependent content.
    report.wall_seconds = 0.0;
    std::ostringstream out;
    report.write_json(out);
    serialized.push_back(out.str());
  }
  EXPECT_EQ(serialized[0], serialized[1]);
  EXPECT_EQ(serialized[0], serialized[2]);
}

TEST(ParallelRunner, AbsorbedCountersMatchSerialRegistry) {
  const sim::RunSpec spec = small_spec(2, 3);

  obs::Registry serial_registry;
  sim::RunObservability serial_obs;
  serial_obs.registry = &serial_registry;
  sim::run_point(spec, serial_obs);

  obs::Registry parallel_registry;
  sim::RunObservability parallel_obs;
  parallel_obs.registry = &parallel_registry;
  sim::ParallelRunner runner(2);
  runner.run_point(spec, parallel_obs);

  const obs::Snapshot serial_snapshot = serial_registry.snapshot();
  const obs::Snapshot parallel_snapshot = parallel_registry.snapshot();
  ASSERT_EQ(serial_snapshot.samples().size(),
            parallel_snapshot.samples().size());
  for (std::size_t i = 0; i < serial_snapshot.samples().size(); ++i) {
    const obs::MetricSample& serial_sample = serial_snapshot.samples()[i];
    const obs::MetricSample& parallel_sample = parallel_snapshot.samples()[i];
    EXPECT_EQ(serial_sample.name, parallel_sample.name);
    if (serial_sample.kind == obs::MetricKind::kCounter) {
      EXPECT_EQ(serial_sample.value, parallel_sample.value)
          << serial_sample.name;
    }
  }
}

TEST(ParallelRunner, TraceSpliceMatchesSerialRepetitionZero) {
  const sim::RunSpec spec = small_spec(2, 2);

  obs::TraceSink serial_trace(1 << 12);
  sim::RunObservability serial_obs;
  serial_obs.trace = &serial_trace;
  sim::run_point(spec, serial_obs);

  obs::TraceSink parallel_trace(1 << 12);
  sim::RunObservability parallel_obs;
  parallel_obs.trace = &parallel_trace;
  sim::ParallelRunner runner(2);
  runner.run_point(spec, parallel_obs);

  const std::vector<obs::TraceEvent> serial_events = serial_trace.events();
  const std::vector<obs::TraceEvent> parallel_events =
      parallel_trace.events();
  ASSERT_EQ(serial_events.size(), parallel_events.size());
  for (std::size_t i = 0; i < serial_events.size(); ++i) {
    EXPECT_EQ(serial_events[i].track, parallel_events[i].track);
    EXPECT_EQ(serial_events[i].start.ns(), parallel_events[i].start.ns());
    EXPECT_EQ(serial_events[i].duration.ns(),
              parallel_events[i].duration.ns());
  }
}

TEST(ParallelRunner, SeedGridPinsSeedsByPointIndex) {
  std::vector<sim::RunSpec> specs(3);
  const std::vector<sim::RunSpec> seeded =
      sim::ParallelRunner::seed_grid(specs, 0x1901);
  EXPECT_EQ(seeded[0].seed, des::derive_task_seed(0x1901, 0, 0));
  EXPECT_EQ(seeded[1].seed, des::derive_task_seed(0x1901, 1, 0));
  EXPECT_EQ(seeded[2].seed, des::derive_task_seed(0x1901, 2, 0));
}

TEST(ParallelRunner, SpeedupAccountingIsPopulated) {
  sim::ParallelRunner runner(2);
  runner.run_point(small_spec(2, 4));
  EXPECT_GT(runner.wall_seconds(), 0.0);
  EXPECT_GT(runner.serial_equivalent_seconds(), 0.0);
  EXPECT_GT(runner.speedup(), 0.0);
}

// --- Testbed suite ------------------------------------------------------

TEST(TestbedSuite, BitIdenticalAcrossJobsAndToSerialRuns) {
  std::vector<tools::TestbedConfig> configs;
  for (int test = 0; test < 3; ++test) {
    tools::TestbedConfig config;
    config.stations = 2;
    config.duration = des::SimTime::from_seconds(2.0);
    config.seed = des::derive_task_seed(0x1901, 0,
                                        static_cast<std::uint64_t>(test));
    configs.push_back(config);
  }
  const tools::TestbedSuiteResult one = tools::run_testbed_suite(configs, 1);
  const tools::TestbedSuiteResult many =
      tools::run_testbed_suite(configs, 3);
  ASSERT_EQ(one.runs.size(), configs.size());
  ASSERT_EQ(many.runs.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const tools::TestbedResult serial =
        tools::run_saturated_testbed(configs[i]);
    for (const tools::TestbedSuiteResult* suite : {&one, &many}) {
      EXPECT_EQ(suite->runs[i].acknowledged, serial.acknowledged);
      EXPECT_EQ(suite->runs[i].collided, serial.collided);
      EXPECT_EQ(suite->runs[i].collision_probability,
                serial.collision_probability);
    }
  }
}

TEST(TestbedSuite, SharedRegistryCountersMatchSerialBinding) {
  auto make_configs = [](obs::Registry* registry) {
    std::vector<tools::TestbedConfig> configs;
    for (int test = 0; test < 2; ++test) {
      tools::TestbedConfig config;
      config.stations = 2;
      config.duration = des::SimTime::from_seconds(1.0);
      config.seed = 0x5EED + static_cast<std::uint64_t>(test);
      config.registry = registry;
      configs.push_back(config);
    }
    return configs;
  };

  obs::Registry serial_registry;
  for (tools::TestbedConfig& config : make_configs(&serial_registry)) {
    tools::run_saturated_testbed(config);
  }
  obs::Registry suite_registry;
  tools::run_testbed_suite(make_configs(&suite_registry), 2);

  const obs::Snapshot serial_snapshot = serial_registry.snapshot();
  const obs::Snapshot suite_snapshot = suite_registry.snapshot();
  ASSERT_EQ(serial_snapshot.samples().size(), suite_snapshot.samples().size());
  for (std::size_t i = 0; i < serial_snapshot.samples().size(); ++i) {
    if (serial_snapshot.samples()[i].kind == obs::MetricKind::kCounter) {
      EXPECT_EQ(serial_snapshot.samples()[i].value,
                suite_snapshot.samples()[i].value)
          << serial_snapshot.samples()[i].name;
    }
  }
}

TEST(TestbedSuite, RejectsSharedTraceSinks) {
  obs::TraceSink trace;
  tools::TestbedConfig config;
  config.stations = 2;
  config.duration = des::SimTime::from_seconds(1.0);
  config.trace = &trace;
  EXPECT_THROW(tools::run_testbed_suite({config}, 2), plc::Error);
}

}  // namespace
}  // namespace plc
