#include <sstream>

#include <gtest/gtest.h>

#include "emu/network.hpp"
#include "tools/ampstat.hpp"
#include "tools/benchdiff.hpp"
#include "tools/capture.hpp"
#include "tools/faifa.hpp"
#include "tools/testbed.hpp"
#include "util/error.hpp"
#include "workload/sources.hpp"

namespace plc::tools {
namespace {

// --- AmpStat -----------------------------------------------------------------------

TEST(AmpStatTool, ReadsCountersThroughTheMmePath) {
  emu::Network network(1);
  emu::HpavDevice& sender = network.add_device();
  emu::HpavDevice& receiver = network.add_device();
  AmpStat ampstat(sender);
  network.start();
  for (int i = 0; i < 32; ++i) {
    frames::EthernetFrame frame;
    frame.destination = receiver.mac();
    frame.source = sender.mac();
    frame.ether_type = frames::kEtherTypeIpv4;
    frame.payload.assign(1400, 0);
    sender.host_send(frame);
  }
  network.run_for(des::SimTime::from_seconds(1.0));
  const mme::AmpStatConfirm confirm =
      ampstat.query(receiver.mac(), frames::Priority::kCa1);
  EXPECT_EQ(confirm.status, 0);
  EXPECT_GT(confirm.acknowledged, 0u);
  EXPECT_EQ(confirm.collided, 0u);  // Single sender: no collisions.
  // The MME-reported value equals the firmware's internal counter.
  EXPECT_EQ(confirm.acknowledged,
            sender.counters()
                .read(receiver.mac(), frames::Priority::kCa1,
                      mme::StatDirection::kTx)
                .acknowledged);
}

TEST(AmpStatTool, ResetZeroesCounters) {
  emu::Network network(2);
  emu::HpavDevice& sender = network.add_device();
  emu::HpavDevice& receiver = network.add_device();
  AmpStat ampstat(sender);
  network.start();
  frames::EthernetFrame frame;
  frame.destination = receiver.mac();
  frame.source = sender.mac();
  frame.ether_type = frames::kEtherTypeIpv4;
  frame.payload.assign(1400, 0);
  for (int i = 0; i < 8; ++i) sender.host_send(frame);
  network.run_for(des::SimTime::from_seconds(1.0));
  EXPECT_GT(ampstat.query(receiver.mac(), frames::Priority::kCa1)
                .acknowledged, 0u);
  const mme::AmpStatConfirm after_reset =
      ampstat.reset(receiver.mac(), frames::Priority::kCa1);
  EXPECT_EQ(after_reset.acknowledged, 0u);
  EXPECT_EQ(after_reset.collided, 0u);
}

// --- Faifa -------------------------------------------------------------------------

TEST(FaifaTool, EnableDisableThroughTheMmePath) {
  emu::Network network(3);
  emu::HpavDevice& device = network.add_device();
  Faifa faifa(device);
  EXPECT_FALSE(device.sniffer_enabled());
  faifa.enable_sniffer();
  EXPECT_TRUE(device.sniffer_enabled());
  EXPECT_TRUE(faifa.sniffer_enabled());
  faifa.disable_sniffer();
  EXPECT_FALSE(device.sniffer_enabled());
}

TEST(FaifaTool, SegmentsBurstsByMpduCnt) {
  emu::Network network(4);
  emu::HpavDevice& sender = network.add_device();
  emu::HpavDevice& destination = network.add_device();
  Faifa faifa(destination);
  faifa.enable_sniffer();
  network.start();
  for (int i = 0; i < 64; ++i) {
    frames::EthernetFrame frame;
    frame.destination = destination.mac();
    frame.source = sender.mac();
    frame.ether_type = frames::kEtherTypeIpv4;
    frame.payload.assign(1400, 0);
    sender.host_send(frame);
  }
  network.run_for(des::SimTime::from_seconds(1.0));
  const auto bursts = faifa.bursts();
  ASSERT_GT(bursts.size(), 0u);
  const auto& stats = network.domain().stats();
  EXPECT_EQ(static_cast<std::int64_t>(bursts.size()),
            stats.successes + stats.collision_events);
  for (const Faifa::BurstInfo& burst : bursts) {
    EXPECT_EQ(burst.src_tei, sender.tei());
    EXPECT_EQ(burst.priority, frames::Priority::kCa1);
    EXPECT_FALSE(burst.mme);
    EXPECT_GE(burst.mpdu_count, 1);
    EXPECT_LE(burst.mpdu_count, 2);
  }
}

TEST(FaifaTool, FormatCaptureIsHumanReadable) {
  mme::SnifferIndication indication;
  indication.sof.src_tei = 3;
  indication.sof.dst_tei = 4;
  indication.sof.link_id = static_cast<std::uint8_t>(frames::Priority::kCa1);
  indication.sof.mpdu_cnt = 1;
  indication.sof.pb_count = 16;
  const std::string line = Faifa::format_capture(indication);
  EXPECT_NE(line.find("stei=3"), std::string::npos);
  EXPECT_NE(line.find("dtei=4"), std::string::npos);
  EXPECT_NE(line.find("lid=CA1"), std::string::npos);
  EXPECT_NE(line.find("mpducnt=1"), std::string::npos);
}

// --- Capture files --------------------------------------------------------------------

std::vector<mme::SnifferIndication> sample_captures(int count) {
  std::vector<mme::SnifferIndication> captures;
  for (int i = 0; i < count; ++i) {
    mme::SnifferIndication capture;
    capture.timestamp_10ns = static_cast<std::uint64_t>(i) * 100;
    capture.sof.src_tei = static_cast<std::uint8_t>(1 + i % 3);
    capture.sof.dst_tei = 9;
    capture.sof.link_id =
        static_cast<std::uint8_t>(i % 5 == 0 ? frames::Priority::kCa2
                                             : frames::Priority::kCa1);
    capture.sof.mme_flag = i % 5 == 0;
    capture.sof.mpdu_cnt = static_cast<std::uint8_t>(i % 2);
    capture.sof.set_frame_duration(des::SimTime::from_us(1025.0));
    captures.push_back(capture);
  }
  return captures;
}

TEST(CaptureFile, RoundTripPreservesEverything) {
  const auto original = sample_captures(37);
  std::stringstream buffer;
  write_capture_file(buffer, original);
  const auto parsed = read_capture_file(buffer);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].timestamp_10ns, original[i].timestamp_10ns);
    EXPECT_EQ(parsed[i].sof.src_tei, original[i].sof.src_tei);
    EXPECT_EQ(parsed[i].sof.mme_flag, original[i].sof.mme_flag);
    EXPECT_EQ(parsed[i].sof.mpdu_cnt, original[i].sof.mpdu_cnt);
  }
}

TEST(CaptureFile, EmptyFileRoundTrips) {
  std::stringstream buffer;
  write_capture_file(buffer, {});
  EXPECT_TRUE(read_capture_file(buffer).empty());
}

TEST(CaptureFile, RejectsBadMagicTruncationAndCorruption) {
  {
    std::stringstream buffer("not a capture");
    EXPECT_THROW(read_capture_file(buffer), plc::Error);
  }
  {
    std::stringstream buffer;
    write_capture_file(buffer, sample_captures(5));
    std::string bytes = buffer.str();
    bytes.resize(bytes.size() - 7);  // Truncate mid-record.
    std::stringstream truncated(bytes);
    EXPECT_THROW(read_capture_file(truncated), plc::Error);
  }
  {
    std::stringstream buffer;
    write_capture_file(buffer, sample_captures(5));
    std::string bytes = buffer.str();
    bytes[bytes.size() - 5] ^= 0x40;  // Corrupt a SoF byte: CRC trips.
    std::stringstream corrupted(bytes);
    EXPECT_THROW(read_capture_file(corrupted), plc::Error);
  }
}

TEST(CaptureFile, ReloadedCapturesAnalyzeIdentically) {
  const auto original = sample_captures(40);
  std::stringstream buffer;
  write_capture_file(buffer, original);
  const auto reloaded = read_capture_file(buffer);
  EXPECT_EQ(Faifa::segment_bursts(original).size(),
            Faifa::segment_bursts(reloaded).size());
  EXPECT_DOUBLE_EQ(Faifa::mme_overhead_of(original),
                   Faifa::mme_overhead_of(reloaded));
  EXPECT_EQ(Faifa::data_burst_sources_of(original),
            Faifa::data_burst_sources_of(reloaded));
}

// --- Testbed harness (the §3 procedure) -----------------------------------------------

TEST(Testbed, AmpstatEstimatorEqualsGroundTruth) {
  TestbedConfig config;
  config.stations = 3;
  config.duration = des::SimTime::from_seconds(10.0);
  const TestbedResult result = run_saturated_testbed(config);
  // The MME-reported estimator must agree exactly with the medium's MPDU
  // accounting: collided/acked == collided_mpdus/(success+collided MPDUs).
  EXPECT_EQ(result.total_collided,
            static_cast<std::uint64_t>(result.domain.collided_mpdus));
  EXPECT_EQ(result.total_acknowledged,
            static_cast<std::uint64_t>(result.domain.success_mpdus +
                                       result.domain.collided_mpdus));
  EXPECT_GT(result.collision_probability, 0.05);
  EXPECT_LT(result.collision_probability, 0.25);
}

TEST(Testbed, AcknowledgedFramesGrowWithN) {
  // The paper's §3.2 observation on real hardware: sum(Ai) *increases*
  // with N because collided frames are acknowledged too and less total
  // time is spent in backoff.
  TestbedConfig config;
  config.duration = des::SimTime::from_seconds(10.0);
  config.stations = 1;
  const std::uint64_t a1 =
      run_saturated_testbed(config).total_acknowledged;
  config.stations = 4;
  const std::uint64_t a4 =
      run_saturated_testbed(config).total_acknowledged;
  EXPECT_GT(a4, a1);
}

TEST(Testbed, PerStationCountersRoughlyBalanced) {
  TestbedConfig config;
  config.stations = 3;
  config.duration = des::SimTime::from_seconds(20.0);
  const TestbedResult result = run_saturated_testbed(config);
  ASSERT_EQ(result.acknowledged.size(), 3u);
  for (const std::uint64_t acked : result.acknowledged) {
    const double share = static_cast<double>(acked) /
                         static_cast<double>(result.total_acknowledged);
    EXPECT_NEAR(share, 1.0 / 3.0, 0.08);  // Long-term fairness.
  }
}

TEST(Testbed, SnifferTraceCoversDataBursts) {
  TestbedConfig config;
  config.stations = 2;
  config.duration = des::SimTime::from_seconds(5.0);
  config.sniff_at_destination = true;
  const TestbedResult result = run_saturated_testbed(config);
  EXPECT_FALSE(result.data_burst_sources.empty());
  for (const int tei : result.data_burst_sources) {
    EXPECT_GE(tei, 1);
    EXPECT_LE(tei, 2);
  }
  EXPECT_DOUBLE_EQ(result.mme_overhead, 0.0);  // No MME chatter enabled.
}

TEST(Testbed, MmeChatterShowsUpAsOverhead) {
  TestbedConfig config;
  config.stations = 2;
  config.duration = des::SimTime::from_seconds(5.0);
  config.sniff_at_destination = true;
  config.mme_interval = des::SimTime::from_us(50'000.0);  // 20 MME/s.
  const TestbedResult result = run_saturated_testbed(config);
  EXPECT_GT(result.mme_overhead, 0.0);
  EXPECT_LT(result.mme_overhead, 0.5);
}

TEST(Testbed, DataKeepsFlowingToDestination) {
  TestbedConfig config;
  config.stations = 2;
  config.duration = des::SimTime::from_seconds(5.0);
  const TestbedResult result = run_saturated_testbed(config);
  EXPECT_GT(result.frames_delivered_to_destination, 1000);
}

TEST(Testbed, RejectsBadConfig) {
  TestbedConfig config;
  config.stations = 0;
  EXPECT_THROW(run_saturated_testbed(config), plc::Error);
  config.stations = 1;
  config.duration = des::SimTime::zero();
  EXPECT_THROW(run_saturated_testbed(config), plc::Error);
}

// --- benchdiff: JSON parsing -------------------------------------------------

TEST(BenchDiffJson, ParsesScalarsArraysAndEscapes) {
  const JsonValue value = parse_json(
      "{\"name\": \"a\\\"b\", \"n\": -1.5e2, \"ok\": true,"
      " \"none\": null, \"list\": [1, \"two\", false]}");
  ASSERT_TRUE(value.is_object());
  ASSERT_NE(value.find("name"), nullptr);
  EXPECT_EQ(value.find("name")->text, "a\"b");
  EXPECT_DOUBLE_EQ(value.find("n")->number, -150.0);
  EXPECT_TRUE(value.find("ok")->boolean);
  EXPECT_EQ(value.find("none")->kind, JsonValue::Kind::kNull);
  ASSERT_EQ(value.find("list")->items.size(), 3u);
  EXPECT_DOUBLE_EQ(value.find("list")->items[0].number, 1.0);
  EXPECT_EQ(value.find("list")->items[1].text, "two");
}

TEST(BenchDiffJson, UnicodeEscapesDecodeToUtf8) {
  const JsonValue value = parse_json("{\"s\": \"\\u00e9\\u0041\"}");
  EXPECT_EQ(value.find("s")->text, "\xc3\xa9"
                                   "A");
}

TEST(BenchDiffJson, RejectsMalformedInput) {
  EXPECT_THROW(parse_json("{\"a\": }"), plc::Error);
  EXPECT_THROW(parse_json("[1, 2"), plc::Error);
  EXPECT_THROW(parse_json("{} trailing"), plc::Error);
  EXPECT_THROW(parse_json(""), plc::Error);
}

// --- benchdiff: report flattening --------------------------------------------

constexpr const char* kReportText =
    "{\"schema\": \"plc-run-report/1\", \"name\": \"unit\","
    " \"wall_seconds\": 2.0, \"events\": 1000,"
    " \"events_per_second\": 500.0,"
    " \"scalars\": {\"x.items_per_second\": 100.0, \"stations\": 3},"
    " \"metrics\": [{\"name\": \"des.events_dispatched\","
    " \"kind\": \"counter\", \"labels\": {}, \"value\": 42}]}";

TEST(BenchDiffReport, FlattensTopLevelScalarsAndMetrics) {
  const BenchReport report = BenchReport::parse(kReportText);
  EXPECT_EQ(report.name, "unit");
  EXPECT_DOUBLE_EQ(report.values.at("wall_seconds"), 2.0);
  EXPECT_DOUBLE_EQ(report.values.at("events"), 1000.0);
  EXPECT_DOUBLE_EQ(report.values.at("scalars.x.items_per_second"), 100.0);
  EXPECT_DOUBLE_EQ(report.values.at("scalars.stations"), 3.0);
  EXPECT_DOUBLE_EQ(report.values.at("metrics.des.events_dispatched"), 42.0);
}

// --- benchdiff: the gate -----------------------------------------------------

BenchReport report_with(double items_per_second, double stations) {
  BenchReport report;
  report.name = "unit";
  report.values["scalars.x.items_per_second"] = items_per_second;
  report.values["scalars.stations"] = stations;
  return report;
}

TEST(BenchDiff, IdenticalReportsPass) {
  const BenchReport report = report_with(100.0, 3.0);
  const DiffResult diff = diff_reports(report, report);
  EXPECT_EQ(diff.regressions, 0);
  for (const ScalarDelta& delta : diff.deltas) {
    EXPECT_FALSE(delta.regression);
    EXPECT_DOUBLE_EQ(delta.delta_pct, 0.0);
  }
}

TEST(BenchDiff, GatedDropBeyondThresholdRegresses) {
  const DiffResult diff =
      diff_reports(report_with(100.0, 3.0), report_with(94.0, 3.0));
  EXPECT_EQ(diff.regressions, 1);
  bool found = false;
  for (const ScalarDelta& delta : diff.deltas) {
    if (delta.key == "scalars.x.items_per_second") {
      found = true;
      EXPECT_TRUE(delta.gated);
      EXPECT_TRUE(delta.regression);
      EXPECT_NEAR(delta.delta_pct, -6.0, 1e-9);
    }
  }
  EXPECT_TRUE(found);
}

TEST(BenchDiff, GatedDropWithinThresholdPasses) {
  const DiffResult diff =
      diff_reports(report_with(100.0, 3.0), report_with(96.0, 3.0));
  EXPECT_EQ(diff.regressions, 0);
}

TEST(BenchDiff, UngatedDropDoesNotRegress) {
  // `stations` halves but matches no gate pattern.
  const DiffResult diff =
      diff_reports(report_with(100.0, 6.0), report_with(100.0, 3.0));
  EXPECT_EQ(diff.regressions, 0);
}

TEST(BenchDiff, MissingGatedValueInCandidateRegresses) {
  BenchReport candidate = report_with(100.0, 3.0);
  candidate.values.erase("scalars.x.items_per_second");
  const DiffResult diff = diff_reports(report_with(100.0, 3.0), candidate);
  EXPECT_EQ(diff.regressions, 1);
}

TEST(BenchDiff, GateImprovementAndNewValuesPass) {
  BenchReport candidate = report_with(120.0, 3.0);
  candidate.values["scalars.fresh"] = 1.0;
  const DiffResult diff = diff_reports(report_with(100.0, 3.0), candidate);
  EXPECT_EQ(diff.regressions, 0);
  bool saw_new = false;
  for (const ScalarDelta& delta : diff.deltas) {
    if (delta.key == "scalars.fresh") saw_new = delta.missing_in_baseline;
  }
  EXPECT_TRUE(saw_new);
}

TEST(BenchDiff, CustomGatePatternsAndThreshold) {
  DiffOptions options;
  options.gate_patterns = {"stations"};
  options.threshold_pct = 10.0;
  // items_per_second no longer gated; stations drops 50% and is.
  const DiffResult diff = diff_reports(report_with(100.0, 6.0),
                                       report_with(50.0, 3.0), options);
  EXPECT_EQ(diff.regressions, 1);
  for (const ScalarDelta& delta : diff.deltas) {
    if (delta.key == "scalars.stations") EXPECT_TRUE(delta.regression);
    if (delta.key == "scalars.x.items_per_second") {
      EXPECT_FALSE(delta.gated);
    }
  }
}

}  // namespace
}  // namespace plc::tools
