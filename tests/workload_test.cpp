#include <deque>

#include <gtest/gtest.h>

#include "des/scheduler.hpp"
#include "util/error.hpp"
#include "workload/sources.hpp"

namespace plc::workload {
namespace {

FrameTemplate make_template() {
  FrameTemplate t;
  t.destination = frames::MacAddress::for_station(2);
  t.source = frames::MacAddress::for_station(1);
  t.payload_bytes = 1470;
  return t;
}

TEST(FrameTemplate, StampsSequenceNumber) {
  const FrameTemplate t = make_template();
  const frames::EthernetFrame frame = t.make(0x01020304);
  EXPECT_EQ(frame.payload[0], 0x01);
  EXPECT_EQ(frame.payload[3], 0x04);
  EXPECT_EQ(frame.payload.size(), 1470u);
  EXPECT_EQ(frame.ether_type, frames::kEtherTypeIpv4);
}

TEST(FrameTemplate, RejectsOversizedPayload) {
  FrameTemplate t = make_template();
  t.payload_bytes = 2000;
  EXPECT_THROW(t.make(0), plc::Error);
}

TEST(Saturated, KeepsBacklogAboveTarget) {
  des::Scheduler scheduler;
  std::deque<frames::EthernetFrame> queue;
  SaturatedSource source(
      scheduler, make_template(),
      [&queue](frames::EthernetFrame frame) {
        queue.push_back(std::move(frame));
        return queue.size();
      },
      /*target_backlog=*/16, des::SimTime::from_us(100.0));
  source.start();
  // Consume 5 frames per 100 us; the source must keep up.
  for (int step = 0; step < 100; ++step) {
    scheduler.run_until(des::SimTime::from_us(100.0 * (step + 1)));
    for (int i = 0; i < 5 && !queue.empty(); ++i) queue.pop_front();
    if (step > 2) EXPECT_GE(queue.size(), 11u) << "step " << step;
  }
  EXPECT_GT(source.frames_generated(), 400);
}

TEST(Poisson, RateIsStatisticallyCorrect) {
  des::Scheduler scheduler;
  std::int64_t arrivals = 0;
  PoissonSource source(
      scheduler, make_template(),
      [&arrivals](frames::EthernetFrame) {
        ++arrivals;
        return std::size_t{0};
      },
      /*rate_fps=*/1000.0, des::RandomStream(7));
  source.start();
  scheduler.run_until(des::SimTime::from_seconds(20.0));
  // 20k expected; 3-sigma ~ 3*sqrt(20000) ~ 424.
  EXPECT_NEAR(static_cast<double>(arrivals), 20'000.0, 600.0);
}

TEST(Poisson, StopHaltsArrivals) {
  des::Scheduler scheduler;
  std::int64_t arrivals = 0;
  PoissonSource source(
      scheduler, make_template(),
      [&arrivals](frames::EthernetFrame) {
        ++arrivals;
        return std::size_t{0};
      },
      1000.0, des::RandomStream(8));
  source.start();
  scheduler.run_until(des::SimTime::from_seconds(1.0));
  source.stop();
  const std::int64_t at_stop = arrivals;
  scheduler.run_until(des::SimTime::from_seconds(2.0));
  EXPECT_LE(arrivals, at_stop + 1);  // At most one in-flight event.
}

TEST(OnOff, GeneratesOnlyDuringOnPeriods) {
  des::Scheduler scheduler;
  std::int64_t arrivals = 0;
  OnOffSource source(
      scheduler, make_template(),
      [&arrivals](frames::EthernetFrame) {
        ++arrivals;
        return std::size_t{0};
      },
      /*on_rate_fps=*/1000.0, des::SimTime::from_seconds(0.5),
      des::SimTime::from_seconds(0.5), des::RandomStream(9));
  source.start();
  scheduler.run_until(des::SimTime::from_seconds(20.0));
  // Duty cycle 50%: expect about 10k arrivals, loosely bounded.
  EXPECT_GT(arrivals, 5'000);
  EXPECT_LT(arrivals, 15'000);
}

TEST(Sources, ValidateArguments) {
  des::Scheduler scheduler;
  const auto sink = [](frames::EthernetFrame) { return std::size_t{0}; };
  EXPECT_THROW(SaturatedSource(scheduler, make_template(), sink, 0),
               plc::Error);
  EXPECT_THROW(PoissonSource(scheduler, make_template(), sink, 0.0,
                             des::RandomStream(1)),
               plc::Error);
  EXPECT_THROW(OnOffSource(scheduler, make_template(), sink, 100.0,
                           des::SimTime::zero(),
                           des::SimTime::from_seconds(1),
                           des::RandomStream(1)),
               plc::Error);
}

}  // namespace
}  // namespace plc::workload
