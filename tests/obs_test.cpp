// Tests for the observability layer: the metrics registry, snapshot
// semantics, the trace ring buffer and its exporters, the run report, and
// the end-to-end wiring into the slot simulator, the runner, and the
// emulated testbed.
#include <algorithm>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mac/config.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "sim/runner.hpp"
#include "sim/slot_simulator.hpp"
#include "tools/testbed.hpp"
#include "util/error.hpp"

namespace plc {
namespace {

// --- json writer -------------------------------------------------------------

TEST(JsonWriter, NestedStructuresAndEscaping) {
  std::ostringstream out;
  obs::JsonWriter json(out);
  json.begin_object();
  json.field("name", "say \"hi\"\n");
  json.key("values").begin_array().value(std::int64_t{1}).value(2.5)
      .end_array();
  json.field("ok", true);
  json.end_object();
  EXPECT_EQ(out.str(),
            "{\"name\": \"say \\\"hi\\\"\\n\","
            "\"values\": [1,2.5],\"ok\": true}");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  std::ostringstream out;
  obs::JsonWriter json(out);
  json.begin_array();
  json.value(std::numeric_limits<double>::infinity());
  json.value(std::numeric_limits<double>::quiet_NaN());
  json.end_array();
  EXPECT_EQ(out.str(), "[null,null]");
}

// --- registry ----------------------------------------------------------------

TEST(Registry, SameSeriesReturnsSameInstrument) {
  obs::Registry registry;
  obs::Counter& a = registry.counter("events", {{"type", "idle"}});
  obs::Counter& b = registry.counter("events", {{"type", "idle"}});
  EXPECT_EQ(&a, &b);
  // Label order must not matter.
  obs::Counter& c =
      registry.counter("tx", {{"station", "1"}, {"outcome", "ok"}});
  obs::Counter& d =
      registry.counter("tx", {{"outcome", "ok"}, {"station", "1"}});
  EXPECT_EQ(&c, &d);
  // Different labels are a different series.
  obs::Counter& e = registry.counter("events", {{"type", "success"}});
  EXPECT_NE(&a, &e);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(Registry, KindMismatchThrows) {
  obs::Registry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), Error);
  EXPECT_THROW(registry.histogram("x"), Error);
}

TEST(Registry, InstrumentPointersStableAcrossGrowth) {
  obs::Registry registry;
  obs::Counter& first = registry.counter("first");
  for (int i = 0; i < 1000; ++i) {
    registry.counter("c" + std::to_string(i));
  }
  first.add(7);
  EXPECT_EQ(registry.counter("first").value(), 7);
}

TEST(Registry, GaugeAndHistogram) {
  obs::Registry registry;
  obs::Gauge& gauge = registry.gauge("depth");
  gauge.set(3.0);
  gauge.set_max(1.0);  // Lower value: high-water mark keeps 3.
  EXPECT_DOUBLE_EQ(gauge.value(), 3.0);
  gauge.set_max(8.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 8.0);

  obs::Histogram& histogram = registry.histogram("delay");
  histogram.observe(1.0);
  histogram.observe(3.0);
  EXPECT_EQ(histogram.stats().count(), 2);
  EXPECT_NEAR(histogram.stats().mean(), 2.0, 1e-12);
}

// --- snapshot ----------------------------------------------------------------

TEST(Snapshot, FindAndMerge) {
  obs::Registry registry;
  registry.counter("events", {{"type", "idle"}}).add(10);
  registry.gauge("depth").set(2.0);
  registry.histogram("delay").observe(4.0);
  obs::Snapshot first = registry.snapshot();

  registry.counter("events", {{"type", "idle"}}).add(5);
  registry.gauge("depth").set(9.0);
  registry.histogram("delay").observe(8.0);
  registry.counter("fresh").add(1);
  obs::Snapshot second = registry.snapshot();

  // Snapshots are point-in-time copies.
  const obs::MetricSample* idle =
      first.find("events", {{"type", "idle"}});
  ASSERT_NE(idle, nullptr);
  EXPECT_DOUBLE_EQ(idle->value, 10.0);
  EXPECT_EQ(first.find("fresh"), nullptr);

  // Merge: counters add, gauges take the incoming value, histograms merge
  // distributions, unseen series append.
  first.merge(second);
  EXPECT_DOUBLE_EQ(first.find("events", {{"type", "idle"}})->value, 25.0);
  EXPECT_DOUBLE_EQ(first.find("depth")->value, 9.0);
  EXPECT_EQ(first.find("delay")->distribution.count(), 3);
  ASSERT_NE(first.find("fresh"), nullptr);
  EXPECT_DOUBLE_EQ(first.find("fresh")->value, 1.0);
}

TEST(Snapshot, WritesJsonArray) {
  obs::Registry registry;
  registry.counter("events", {{"type", "idle"}}).add(3);
  std::ostringstream out;
  registry.snapshot().write_json(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"name\": \"events\""), std::string::npos);
  EXPECT_NE(text.find("\"type\": \"idle\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\": \"counter\""), std::string::npos);
  EXPECT_NE(text.find("\"value\": 3"), std::string::npos);
  EXPECT_EQ(text.front(), '[');
}

// --- trace sink --------------------------------------------------------------

obs::TraceEvent span_at(std::int64_t ns, const char* name) {
  obs::TraceEvent event;
  event.phase = obs::TracePhase::kSpan;
  event.name = name;
  event.start = des::SimTime::from_ns(ns);
  event.duration = des::SimTime::from_ns(100);
  return event;
}

TEST(TraceSink, RingBufferKeepsMostRecent) {
  obs::TraceSink sink(4);
  for (std::int64_t i = 0; i < 10; ++i) {
    sink.record(span_at(i, "e"));
  }
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.recorded(), 10);
  EXPECT_EQ(sink.dropped(), 6);
  const std::vector<obs::TraceEvent> events = sink.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, and exactly the most recent window.
  EXPECT_EQ(events.front().start.ns(), 6);
  EXPECT_EQ(events.back().start.ns(), 9);
}

TEST(TraceSink, ChromeTraceFormat) {
  obs::TraceSink sink;
  obs::TraceEvent span = span_at(1000, "success");
  span.track = obs::station_track(2);
  span.add_arg("winner", 2.0);
  sink.record(span);

  obs::TraceEvent counter;
  counter.phase = obs::TracePhase::kCounter;
  counter.name = "backoff";
  counter.track = obs::station_track(0);
  counter.add_arg("bc", 5.0);
  sink.record(counter);

  std::ostringstream out;
  sink.write_chrome_trace(out);
  const std::string text = out.str();
  // A JSON array with span + counter phases, microsecond timestamps, and
  // thread-name metadata naming the station tracks.
  EXPECT_EQ(text.front(), '[');
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(text.find("\"ts\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"dur\": 0.1"), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"station 2\""), std::string::npos);
  // Counter series are suffixed per station so Chrome keys them apart.
  EXPECT_NE(text.find("\"name\": \"backoff/station 0\""),
            std::string::npos);
}

TEST(TraceSink, JsonlOneObjectPerLine) {
  obs::TraceSink sink;
  sink.record(span_at(10, "a"));
  sink.record(span_at(20, "b"));
  std::ostringstream out;
  sink.write_jsonl(out);
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_NE(text.find("\"ts_ns\": 10"), std::string::npos);
  EXPECT_NE(text.find("\"dur_ns\": 100"), std::string::npos);
}

// --- run report --------------------------------------------------------------

TEST(RunReport, JsonCarriesSchemaAndDerivedRates) {
  obs::RunReport report;
  report.name = "unit";
  report.wall_seconds = 2.0;
  report.simulated_seconds = 100.0;
  report.events = 1000;
  report.scalars["x"] = 1.5;
  EXPECT_DOUBLE_EQ(report.events_per_second(), 500.0);
  EXPECT_DOUBLE_EQ(report.sim_seconds_per_wall_second(), 50.0);

  std::ostringstream out;
  report.write_json(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"schema\": \"plc-run-report/1\""),
            std::string::npos);
  EXPECT_NE(text.find("\"name\": \"unit\""), std::string::npos);
  EXPECT_NE(text.find("\"events\": 1000"), std::string::npos);
  EXPECT_NE(text.find("\"x\": 1.5"), std::string::npos);
  EXPECT_NE(text.find("\"metrics\": []"), std::string::npos);
}

TEST(RunReport, SaveRejectsUnwritablePath) {
  obs::RunReport report;
  EXPECT_THROW(report.save("/nonexistent-dir/report.json"), Error);
}

// --- slot simulator integration ---------------------------------------------

TEST(SlotSimObs, MetricsAgreeWithResults) {
  obs::Registry registry;
  sim::SlotSimulator simulator(
      sim::make_1901_entities(3, mac::BackoffConfig::ca0_ca1(), 7),
      sim::SlotTiming{});
  simulator.bind_metrics(registry);
  const sim::SlotSimResults results = simulator.run_events(5'000);

  const obs::Snapshot snapshot = registry.snapshot();
  EXPECT_DOUBLE_EQ(
      snapshot.find("slot_sim.events", {{"type", "idle"}})->value,
      static_cast<double>(results.idle_slots));
  EXPECT_DOUBLE_EQ(
      snapshot.find("slot_sim.events", {{"type", "success"}})->value,
      static_cast<double>(results.successes));
  EXPECT_DOUBLE_EQ(
      snapshot.find("slot_sim.events", {{"type", "collision"}})->value,
      static_cast<double>(results.collision_events));

  // Per-station outcomes match the per-station result counters.
  double success_total = 0.0;
  for (int station = 0; station < 3; ++station) {
    const obs::MetricSample* sample = snapshot.find(
        "slot_sim.tx", {{"station", std::to_string(station)},
                        {"outcome", "success"}});
    ASSERT_NE(sample, nullptr);
    EXPECT_DOUBLE_EQ(
        sample->value,
        static_cast<double>(
            results.tx_success[static_cast<std::size_t>(station)]));
    success_total += sample->value;
  }
  EXPECT_DOUBLE_EQ(success_total,
                   static_cast<double>(results.successes));
}

TEST(SlotSimObs, TraceRecordsSpansOnStationTracks) {
  obs::TraceSink sink;
  sim::SlotSimulator simulator(
      sim::make_1901_entities(2, mac::BackoffConfig::ca0_ca1(), 11),
      sim::SlotTiming{});
  simulator.set_trace(&sink, /*counter_samples=*/true);
  const sim::SlotSimResults results = simulator.run_events(200);

  bool saw_station_span = false;
  bool saw_counter = false;
  std::int64_t spans = 0;
  for (const obs::TraceEvent& event : sink.events()) {
    if (event.phase == obs::TracePhase::kSpan) {
      ++spans;
      if (event.track != obs::kMediumTrack) saw_station_span = true;
      EXPECT_GT(event.duration.ns(), 0);
    }
    if (event.phase == obs::TracePhase::kCounter) saw_counter = true;
  }
  EXPECT_TRUE(saw_station_span);
  EXPECT_TRUE(saw_counter);
  // One span per idle/success event and one per colliding transmitter.
  EXPECT_EQ(spans, results.idle_slots + results.successes +
                       results.collided_tx);
}

// --- runner integration ------------------------------------------------------

TEST(RunnerObs, RegistryAccumulatesAcrossRepetitions) {
  sim::RunSpec spec;
  spec.stations = 2;
  spec.duration = des::SimTime::from_seconds(0.5);
  spec.repetitions = 3;

  obs::Registry registry;
  obs::TraceSink trace;
  sim::RunObservability observability;
  observability.registry = &registry;
  observability.trace = &trace;
  const sim::RunSummary summary = sim::run_point(spec, observability);

  EXPECT_EQ(summary.collision_probability.count(), 3);
  EXPECT_GT(summary.medium_events, 0);
  EXPECT_NEAR(summary.simulated.seconds(), 1.5, 0.05);
  EXPECT_GT(trace.recorded(), 0);

  // The one registry saw all three repetitions' events.
  const obs::Snapshot snapshot = registry.snapshot();
  double events = 0.0;
  for (const char* type : {"idle", "success", "collision"}) {
    const obs::MetricSample* sample =
        snapshot.find("slot_sim.events", {{"type", type}});
    ASSERT_NE(sample, nullptr);
    events += sample->value;
  }
  EXPECT_DOUBLE_EQ(events, static_cast<double>(summary.medium_events));
}

TEST(RunnerObs, RunPointReportIsSelfConsistent) {
  sim::RunSpec spec;
  spec.stations = 3;
  spec.duration = des::SimTime::from_seconds(0.5);
  spec.repetitions = 2;

  const obs::RunReport report = sim::run_point_report(spec, "unit-run");
  EXPECT_EQ(report.name, "unit-run");
  EXPECT_GT(report.events, 0);
  EXPECT_GE(report.wall_seconds, 0.0);
  EXPECT_NEAR(report.simulated_seconds, 1.0, 0.05);
  EXPECT_DOUBLE_EQ(report.scalars.at("stations"), 3.0);
  EXPECT_DOUBLE_EQ(report.scalars.at("repetitions"), 2.0);
  EXPECT_GT(report.scalars.at("collision_probability_mean"), 0.0);
  EXPECT_GT(report.scalars.at("normalized_throughput_mean"), 0.0);
  EXPECT_FALSE(report.metrics.empty());
}

// --- testbed integration -----------------------------------------------------

TEST(TestbedObs, RegistryAndTraceSeeTheWholeStack) {
  tools::TestbedConfig config;
  config.stations = 2;
  config.duration = des::SimTime::from_seconds(2.0);
  config.warmup = des::SimTime::from_seconds(0.2);

  obs::Registry registry;
  obs::TraceSink trace;
  config.registry = &registry;
  config.trace = &trace;
  const tools::TestbedResult result = tools::run_saturated_testbed(config);
  EXPECT_GT(result.total_acknowledged, 0u);

  const obs::Snapshot snapshot = registry.snapshot();
  // Scheduler, domain, and device instruments all present and non-zero.
  const obs::MetricSample* dispatched =
      snapshot.find("des.events_dispatched");
  ASSERT_NE(dispatched, nullptr);
  EXPECT_GT(dispatched->value, 0.0);
  const obs::MetricSample* successes =
      snapshot.find("medium.events", {{"type", "success"}});
  ASSERT_NE(successes, nullptr);
  EXPECT_GT(successes->value, 0.0);
  const obs::MetricSample* acked =
      snapshot.find("emu.bursts", {{"station", "1"}, {"outcome", "acked"}});
  ASSERT_NE(acked, nullptr);
  EXPECT_GT(acked->value, 0.0);
  EXPECT_GT(trace.recorded(), 0);
}

}  // namespace
}  // namespace plc
