// Tests for the observability layer: the metrics registry, snapshot
// semantics, the trace ring buffer and its exporters, the run report, and
// the end-to-end wiring into the slot simulator, the runner, and the
// emulated testbed.
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mac/config.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "sim/runner.hpp"
#include "sim/slot_simulator.hpp"
#include "tools/testbed.hpp"
#include "util/error.hpp"

namespace plc {
namespace {

// --- json writer -------------------------------------------------------------

TEST(JsonWriter, NestedStructuresAndEscaping) {
  std::ostringstream out;
  obs::JsonWriter json(out);
  json.begin_object();
  json.field("name", "say \"hi\"\n");
  json.key("values").begin_array().value(std::int64_t{1}).value(2.5)
      .end_array();
  json.field("ok", true);
  json.end_object();
  EXPECT_EQ(out.str(),
            "{\"name\": \"say \\\"hi\\\"\\n\","
            "\"values\": [1,2.5],\"ok\": true}");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  std::ostringstream out;
  obs::JsonWriter json(out);
  json.begin_array();
  json.value(std::numeric_limits<double>::infinity());
  json.value(std::numeric_limits<double>::quiet_NaN());
  json.end_array();
  EXPECT_EQ(out.str(), "[null,null]");
}

TEST(JsonWriter, ControlCharactersEscapedUtf8PassedThrough) {
  std::ostringstream out;
  obs::JsonWriter json(out);
  // \x01 has no shorthand escape and must become a \uXXXX escape;
  // tab has one; multi-byte UTF-8 ("é") passes through as raw bytes.
  json.begin_object();
  json.field("s", "a\x01" "b\tc\xc3\xa9");
  json.end_object();
  EXPECT_EQ(out.str(),
            "{\"s\": \"a\\u0001b\\tc\xc3\xa9\"}");
}

// --- registry ----------------------------------------------------------------

TEST(Registry, SameSeriesReturnsSameInstrument) {
  obs::Registry registry;
  obs::Counter& a = registry.counter("events", {{"type", "idle"}});
  obs::Counter& b = registry.counter("events", {{"type", "idle"}});
  EXPECT_EQ(&a, &b);
  // Label order must not matter.
  obs::Counter& c =
      registry.counter("tx", {{"station", "1"}, {"outcome", "ok"}});
  obs::Counter& d =
      registry.counter("tx", {{"outcome", "ok"}, {"station", "1"}});
  EXPECT_EQ(&c, &d);
  // Different labels are a different series.
  obs::Counter& e = registry.counter("events", {{"type", "success"}});
  EXPECT_NE(&a, &e);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(Registry, KindMismatchThrows) {
  obs::Registry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), Error);
  EXPECT_THROW(registry.histogram("x"), Error);
}

TEST(Registry, InstrumentPointersStableAcrossGrowth) {
  obs::Registry registry;
  obs::Counter& first = registry.counter("first");
  for (int i = 0; i < 1000; ++i) {
    registry.counter("c" + std::to_string(i));
  }
  first.add(7);
  EXPECT_EQ(registry.counter("first").value(), 7);
}

TEST(Registry, GaugeAndHistogram) {
  obs::Registry registry;
  obs::Gauge& gauge = registry.gauge("depth");
  gauge.set(3.0);
  gauge.set_max(1.0);  // Lower value: high-water mark keeps 3.
  EXPECT_DOUBLE_EQ(gauge.value(), 3.0);
  gauge.set_max(8.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 8.0);

  obs::Histogram& histogram = registry.histogram("delay");
  histogram.observe(1.0);
  histogram.observe(3.0);
  EXPECT_EQ(histogram.stats().count(), 2);
  EXPECT_NEAR(histogram.stats().mean(), 2.0, 1e-12);
}

// --- snapshot ----------------------------------------------------------------

TEST(Snapshot, FindAndMerge) {
  obs::Registry registry;
  registry.counter("events", {{"type", "idle"}}).add(10);
  registry.gauge("depth").set(2.0);
  registry.histogram("delay").observe(4.0);
  obs::Snapshot first = registry.snapshot();

  registry.counter("events", {{"type", "idle"}}).add(5);
  registry.gauge("depth").set(9.0);
  registry.histogram("delay").observe(8.0);
  registry.counter("fresh").add(1);
  obs::Snapshot second = registry.snapshot();

  // Snapshots are point-in-time copies.
  const obs::MetricSample* idle =
      first.find("events", {{"type", "idle"}});
  ASSERT_NE(idle, nullptr);
  EXPECT_DOUBLE_EQ(idle->value, 10.0);
  EXPECT_EQ(first.find("fresh"), nullptr);

  // Merge: counters add, gauges take the incoming value, histograms merge
  // distributions, unseen series append.
  first.merge(second);
  EXPECT_DOUBLE_EQ(first.find("events", {{"type", "idle"}})->value, 25.0);
  EXPECT_DOUBLE_EQ(first.find("depth")->value, 9.0);
  EXPECT_EQ(first.find("delay")->distribution.count(), 3);
  ASSERT_NE(first.find("fresh"), nullptr);
  EXPECT_DOUBLE_EQ(first.find("fresh")->value, 1.0);
}

TEST(Snapshot, WritesJsonArray) {
  obs::Registry registry;
  registry.counter("events", {{"type", "idle"}}).add(3);
  std::ostringstream out;
  registry.snapshot().write_json(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"name\": \"events\""), std::string::npos);
  EXPECT_NE(text.find("\"type\": \"idle\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\": \"counter\""), std::string::npos);
  EXPECT_NE(text.find("\"value\": 3"), std::string::npos);
  EXPECT_EQ(text.front(), '[');
}

// --- trace sink --------------------------------------------------------------

obs::TraceEvent span_at(std::int64_t ns, const char* name) {
  obs::TraceEvent event;
  event.phase = obs::TracePhase::kSpan;
  event.name = name;
  event.start = des::SimTime::from_ns(ns);
  event.duration = des::SimTime::from_ns(100);
  return event;
}

TEST(TraceSink, RingBufferKeepsMostRecent) {
  obs::TraceSink sink(4);
  for (std::int64_t i = 0; i < 10; ++i) {
    sink.record(span_at(i, "e"));
  }
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.recorded(), 10);
  EXPECT_EQ(sink.dropped(), 6);
  const std::vector<obs::TraceEvent> events = sink.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, and exactly the most recent window.
  EXPECT_EQ(events.front().start.ns(), 6);
  EXPECT_EQ(events.back().start.ns(), 9);
}

TEST(TraceSink, ChromeTraceFormat) {
  obs::TraceSink sink;
  obs::TraceEvent span = span_at(1000, "success");
  span.track = obs::station_track(2);
  span.add_arg("winner", 2.0);
  sink.record(span);

  obs::TraceEvent counter;
  counter.phase = obs::TracePhase::kCounter;
  counter.name = "backoff";
  counter.track = obs::station_track(0);
  counter.add_arg("bc", 5.0);
  sink.record(counter);

  std::ostringstream out;
  sink.write_chrome_trace(out);
  const std::string text = out.str();
  // A JSON array with span + counter phases, microsecond timestamps, and
  // thread-name metadata naming the station tracks.
  EXPECT_EQ(text.front(), '[');
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(text.find("\"ts\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"dur\": 0.1"), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"station 2\""), std::string::npos);
  // Counter series are suffixed per station so Chrome keys them apart.
  EXPECT_NE(text.find("\"name\": \"backoff/station 0\""),
            std::string::npos);
}

TEST(TraceSink, JsonlOneObjectPerLine) {
  obs::TraceSink sink;
  sink.record(span_at(10, "a"));
  sink.record(span_at(20, "b"));
  std::ostringstream out;
  sink.write_jsonl(out);
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_NE(text.find("\"ts_ns\": 10"), std::string::npos);
  EXPECT_NE(text.find("\"dur_ns\": 100"), std::string::npos);
}

// --- run report --------------------------------------------------------------

TEST(RunReport, JsonCarriesSchemaAndDerivedRates) {
  obs::RunReport report;
  report.name = "unit";
  report.wall_seconds = 2.0;
  report.simulated_seconds = 100.0;
  report.events = 1000;
  report.scalars["x"] = 1.5;
  EXPECT_DOUBLE_EQ(report.events_per_second(), 500.0);
  EXPECT_DOUBLE_EQ(report.sim_seconds_per_wall_second(), 50.0);

  std::ostringstream out;
  report.write_json(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"schema\": \"plc-run-report/1\""),
            std::string::npos);
  EXPECT_NE(text.find("\"name\": \"unit\""), std::string::npos);
  EXPECT_NE(text.find("\"events\": 1000"), std::string::npos);
  EXPECT_NE(text.find("\"x\": 1.5"), std::string::npos);
  EXPECT_NE(text.find("\"metrics\": []"), std::string::npos);
}

TEST(RunReport, SaveRejectsUnwritablePath) {
  obs::RunReport report;
  EXPECT_THROW(report.save("/nonexistent-dir/report.json"), Error);
}

// --- slot simulator integration ---------------------------------------------

TEST(SlotSimObs, MetricsAgreeWithResults) {
  obs::Registry registry;
  sim::SlotSimulator simulator(
      sim::make_1901_entities(3, mac::BackoffConfig::ca0_ca1(), 7));
  simulator.bind_metrics(registry);
  const sim::SlotSimResults results = simulator.run_events(5'000);

  const obs::Snapshot snapshot = registry.snapshot();
  EXPECT_DOUBLE_EQ(
      snapshot.find("slot_sim.events", {{"type", "idle"}})->value,
      static_cast<double>(results.idle_slots));
  EXPECT_DOUBLE_EQ(
      snapshot.find("slot_sim.events", {{"type", "success"}})->value,
      static_cast<double>(results.successes));
  EXPECT_DOUBLE_EQ(
      snapshot.find("slot_sim.events", {{"type", "collision"}})->value,
      static_cast<double>(results.collision_events));

  // Per-station outcomes match the per-station result counters.
  double success_total = 0.0;
  for (int station = 0; station < 3; ++station) {
    const obs::MetricSample* sample = snapshot.find(
        "slot_sim.tx", {{"station", std::to_string(station)},
                        {"outcome", "success"}});
    ASSERT_NE(sample, nullptr);
    EXPECT_DOUBLE_EQ(
        sample->value,
        static_cast<double>(
            results.tx_success[static_cast<std::size_t>(station)]));
    success_total += sample->value;
  }
  EXPECT_DOUBLE_EQ(success_total,
                   static_cast<double>(results.successes));
}

TEST(SlotSimObs, TraceRecordsSpansOnStationTracks) {
  obs::TraceSink sink;
  sim::SlotSimulator simulator(
      sim::make_1901_entities(2, mac::BackoffConfig::ca0_ca1(), 11));
  simulator.set_trace(&sink, /*counter_samples=*/true);
  const sim::SlotSimResults results = simulator.run_events(200);

  bool saw_station_span = false;
  bool saw_counter = false;
  std::int64_t spans = 0;
  for (const obs::TraceEvent& event : sink.events()) {
    if (event.phase == obs::TracePhase::kSpan) {
      ++spans;
      if (event.track != obs::kMediumTrack) saw_station_span = true;
      EXPECT_GT(event.duration.ns(), 0);
    }
    if (event.phase == obs::TracePhase::kCounter) saw_counter = true;
  }
  EXPECT_TRUE(saw_station_span);
  EXPECT_TRUE(saw_counter);
  // One span per idle/success event and one per colliding transmitter.
  EXPECT_EQ(spans, results.idle_slots + results.successes +
                       results.collided_tx);
}

// --- runner integration ------------------------------------------------------

TEST(RunnerObs, RegistryAccumulatesAcrossRepetitions) {
  sim::RunSpec spec;
  spec.stations = 2;
  spec.duration = des::SimTime::from_seconds(0.5);
  spec.repetitions = 3;

  obs::Registry registry;
  obs::TraceSink trace;
  sim::RunObservability observability;
  observability.registry = &registry;
  observability.trace = &trace;
  const sim::RunSummary summary = sim::run_point(spec, observability);

  EXPECT_EQ(summary.collision_probability.count(), 3);
  EXPECT_GT(summary.medium_events, 0);
  EXPECT_NEAR(summary.simulated.seconds(), 1.5, 0.05);
  EXPECT_GT(trace.recorded(), 0);

  // The one registry saw all three repetitions' events.
  const obs::Snapshot snapshot = registry.snapshot();
  double events = 0.0;
  for (const char* type : {"idle", "success", "collision"}) {
    const obs::MetricSample* sample =
        snapshot.find("slot_sim.events", {{"type", type}});
    ASSERT_NE(sample, nullptr);
    events += sample->value;
  }
  EXPECT_DOUBLE_EQ(events, static_cast<double>(summary.medium_events));
}

TEST(RunnerObs, RunPointReportIsSelfConsistent) {
  sim::RunSpec spec;
  spec.stations = 3;
  spec.duration = des::SimTime::from_seconds(0.5);
  spec.repetitions = 2;

  const obs::RunReport report = sim::run_point_report(spec, "unit-run");
  EXPECT_EQ(report.name, "unit-run");
  EXPECT_GT(report.events, 0);
  EXPECT_GE(report.wall_seconds, 0.0);
  EXPECT_NEAR(report.simulated_seconds, 1.0, 0.05);
  EXPECT_DOUBLE_EQ(report.scalars.at("stations"), 3.0);
  EXPECT_DOUBLE_EQ(report.scalars.at("repetitions"), 2.0);
  EXPECT_GT(report.scalars.at("collision_probability_mean"), 0.0);
  EXPECT_GT(report.scalars.at("normalized_throughput_mean"), 0.0);
  EXPECT_FALSE(report.metrics.empty());
}

// --- testbed integration -----------------------------------------------------

TEST(TestbedObs, RegistryAndTraceSeeTheWholeStack) {
  tools::TestbedConfig config;
  config.stations = 2;
  config.duration = des::SimTime::from_seconds(2.0);
  config.warmup = des::SimTime::from_seconds(0.2);

  obs::Registry registry;
  obs::TraceSink trace;
  config.registry = &registry;
  config.trace = &trace;
  const tools::TestbedResult result = tools::run_saturated_testbed(config);
  EXPECT_GT(result.total_acknowledged, 0u);

  const obs::Snapshot snapshot = registry.snapshot();
  // Scheduler, domain, and device instruments all present and non-zero.
  const obs::MetricSample* dispatched =
      snapshot.find("des.events_dispatched");
  ASSERT_NE(dispatched, nullptr);
  EXPECT_GT(dispatched->value, 0.0);
  const obs::MetricSample* successes =
      snapshot.find("medium.events", {{"type", "success"}});
  ASSERT_NE(successes, nullptr);
  EXPECT_GT(successes->value, 0.0);
  const obs::MetricSample* acked =
      snapshot.find("emu.bursts", {{"station", "1"}, {"outcome", "acked"}});
  ASSERT_NE(acked, nullptr);
  EXPECT_GT(acked->value, 0.0);
  EXPECT_GT(trace.recorded(), 0);
}

// --- profiler ----------------------------------------------------------------

void spin_ns(std::int64_t ns) {
  // Touch a volatile in a loop long enough to accumulate measurable time.
  volatile std::int64_t sink = 0;
  for (std::int64_t i = 0; i < ns / 4; ++i) sink = sink + 1;
}

TEST(Profiler, DisabledScopesAreNoOps) {
  obs::Profiler::set_enabled(false);
  obs::Profiler::instance().reset();
  {
    PROF_SCOPE("off.outer");
    PROF_SCOPE("off.inner");
    spin_ns(1000);
  }
  EXPECT_TRUE(obs::Profiler::instance().snapshot().empty());
}

TEST(Profiler, NestedScopesFormPathsWithSelfTime) {
  obs::Profiler& profiler = obs::Profiler::instance();
  profiler.reset();
  obs::Profiler::set_enabled(true);
  {
    PROF_SCOPE("outer");
    spin_ns(50'000);
    for (int i = 0; i < 3; ++i) {
      PROF_SCOPE("inner");
      spin_ns(10'000);
    }
  }
  obs::Profiler::set_enabled(false);

  const obs::ProfileSnapshot snapshot = profiler.snapshot();
  const obs::ProfileNodeStats* outer = snapshot.find("outer");
  const obs::ProfileNodeStats* inner = snapshot.find("outer/inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->calls, 1);
  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(inner->calls, 3);
  EXPECT_EQ(inner->depth, 1);
  EXPECT_EQ(inner->name, "inner");
  // The child's time is inside the parent's, and self excludes it.
  EXPECT_GT(outer->total_ns, 0);
  EXPECT_LE(inner->total_ns, outer->total_ns);
  EXPECT_EQ(outer->self_ns, outer->total_ns - inner->total_ns);
  EXPECT_EQ(inner->self_ns, inner->total_ns);
  EXPECT_LE(inner->min_ns, inner->max_ns);
  EXPECT_LE(inner->max_ns, inner->total_ns);
  // Depth-first order: the parent precedes its child.
  ASSERT_EQ(snapshot.nodes().size(), 2u);
  EXPECT_EQ(snapshot.nodes()[0].path, "outer");
  EXPECT_EQ(snapshot.nodes()[1].path, "outer/inner");
}

TEST(Profiler, TextTreeListsPhases) {
  obs::Profiler& profiler = obs::Profiler::instance();
  profiler.reset();
  obs::Profiler::set_enabled(true);
  {
    PROF_SCOPE("tree.root");
    PROF_SCOPE("tree.leaf");
  }
  obs::Profiler::set_enabled(false);
  std::ostringstream out;
  profiler.snapshot().write_text_tree(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("tree.root"), std::string::npos);
  EXPECT_NE(text.find("tree.leaf"), std::string::npos);
}

TEST(Profiler, ResetClearsNodesAndCapturedEvents) {
  obs::Profiler& profiler = obs::Profiler::instance();
  profiler.reset();
  profiler.set_capture_events(true, 16);
  obs::Profiler::set_enabled(true);
  { PROF_SCOPE("reset.scope"); }
  obs::Profiler::set_enabled(false);
  EXPECT_FALSE(profiler.snapshot().empty());
  EXPECT_GT(profiler.captured_events(), 0);

  profiler.reset();
  EXPECT_TRUE(profiler.snapshot().empty());
  EXPECT_EQ(profiler.captured_events(), 0);
  profiler.set_capture_events(false);
}

TEST(Profiler, ChromeTraceCarriesScopeInvocations) {
  obs::Profiler& profiler = obs::Profiler::instance();
  profiler.reset();
  profiler.set_capture_events(true, 64);
  obs::Profiler::set_enabled(true);
  {
    PROF_SCOPE("trace.phase");
    spin_ns(1000);
  }
  obs::Profiler::set_enabled(false);
  std::ostringstream out;
  profiler.write_chrome_trace(out);
  const std::string text = out.str();
  EXPECT_EQ(text.front(), '[');
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(text.find("trace.phase"), std::string::npos);
  profiler.set_capture_events(false);
}

// --- structured log ----------------------------------------------------------

TEST(Log, LevelFilterDropsQuietRecords) {
  std::ostringstream sink;
  obs::Log log(obs::LogLevel::kWarn, &sink, 8);
  EXPECT_FALSE(log.enabled(obs::LogLevel::kDebug));
  EXPECT_FALSE(log.enabled(obs::LogLevel::kInfo));
  EXPECT_TRUE(log.enabled(obs::LogLevel::kWarn));
  EXPECT_TRUE(log.enabled(obs::LogLevel::kError));

  { obs::LogEvent(log, obs::LogLevel::kInfo, "unit", "dropped").num("x", 1); }
  { obs::LogEvent(log, obs::LogLevel::kError, "unit", "kept").num("x", 2); }
  EXPECT_EQ(log.recorded(), 1);
  ASSERT_EQ(log.size(), 1u);
  const obs::LogRecord record = log.records().front();
  EXPECT_EQ(record.level, obs::LogLevel::kError);
  EXPECT_STREQ(record.message, "kept");
  EXPECT_NE(sink.str().find("[error"), std::string::npos);
  EXPECT_EQ(sink.str().find("dropped"), std::string::npos);
}

TEST(Log, FormatTextRendersFieldsAndSimTime) {
  obs::LogRecord record;
  record.level = obs::LogLevel::kInfo;
  record.component = "sim";
  record.message = "step done";
  record.sim_ns = 2'000'000;
  record.add_number("n", 42.0);
  record.add_text("mode", "ca1");
  std::ostringstream out;
  obs::Log::format_text(out, record);
  const std::string text = out.str();
  EXPECT_NE(text.find("[info ]"), std::string::npos);
  EXPECT_NE(text.find("sim="), std::string::npos);
  EXPECT_NE(text.find("sim: step done"), std::string::npos);
  EXPECT_NE(text.find(" n=42"), std::string::npos);
  EXPECT_NE(text.find(" mode=ca1"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(Log, FieldLimitsTruncateGracefully) {
  obs::LogRecord record;
  // One more than capacity: the extra field is dropped, not UB.
  for (int i = 0; i < obs::LogRecord::kMaxFields + 1; ++i) {
    record.add_number("k", static_cast<double>(i));
  }
  EXPECT_EQ(record.field_count, obs::LogRecord::kMaxFields);
  // Long string values truncate to the inline capacity.
  obs::LogRecord text_record;
  const std::string long_value(100, 'x');
  text_record.add_text("s", long_value);
  EXPECT_EQ(std::string(text_record.values[0].text).size(),
            obs::LogValue::kTextCapacity);
}

TEST(Log, RingOverflowKeepsMostRecent) {
  obs::Log log(obs::LogLevel::kTrace, nullptr, 4);
  for (int i = 0; i < 10; ++i) {
    obs::LogRecord record;
    record.level = obs::LogLevel::kInfo;
    record.component = "unit";
    record.message = "tick";
    record.add_number("i", static_cast<double>(i));
    log.write(record);
  }
  EXPECT_EQ(log.recorded(), 10);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.dropped(), 6);
  const std::vector<obs::LogRecord> records = log.records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_DOUBLE_EQ(records.front().values[0].number, 6.0);
  EXPECT_DOUBLE_EQ(records.back().values[0].number, 9.0);
}

TEST(Log, JsonlOneObjectPerRecord) {
  obs::Log log(obs::LogLevel::kTrace, nullptr, 8);
  {
    obs::LogEvent(log, obs::LogLevel::kInfo, "unit", "first")
        .num("x", 1.5)
        .str("tag", "a");
  }
  { obs::LogEvent(log, obs::LogLevel::kWarn, "unit", "second"); }
  std::ostringstream out;
  log.write_jsonl(out);
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_NE(text.find("\"message\": \"first\""), std::string::npos);
  EXPECT_NE(text.find("\"x\": 1.5"), std::string::npos);
  EXPECT_NE(text.find("\"tag\": \"a\""), std::string::npos);
  EXPECT_NE(text.find("\"level\": \"warn\""), std::string::npos);
}

TEST(Log, ParseLogLevel) {
  using obs::LogLevel;
  using obs::parse_log_level;
  EXPECT_EQ(parse_log_level("trace", LogLevel::kInfo), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("DEBUG", LogLevel::kInfo), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("Warn", LogLevel::kInfo), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("off", LogLevel::kInfo), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus", LogLevel::kWarn), LogLevel::kWarn);
}

// --- run report round-trip ---------------------------------------------------

// A deliberately minimal JSON reader, local to this test: just enough to
// check that a saved report parses back to the values that went in. The
// production-grade reader lives in tools/benchdiff and has its own tests.
class MiniJsonReader {
 public:
  explicit MiniJsonReader(std::string text) : text_(std::move(text)) {}

  /// Value of `"key": <number>` anywhere in the document.
  double number_after(const std::string& key) const {
    const std::size_t at = position_after(key);
    return std::stod(text_.substr(at));
  }

  /// Value of `"key": "<string>"` anywhere in the document.
  std::string string_after(const std::string& key) const {
    std::size_t at = position_after(key);
    EXPECT_EQ(text_[at], '"');
    ++at;
    const std::size_t end = text_.find('"', at);
    return text_.substr(at, end - at);
  }

  bool contains(const std::string& needle) const {
    return text_.find(needle) != std::string::npos;
  }

 private:
  std::size_t position_after(const std::string& key) const {
    const std::string quoted = "\"" + key + "\":";
    std::size_t at = text_.find(quoted);
    EXPECT_NE(at, std::string::npos) << "missing key: " << key;
    at += quoted.size();
    while (at < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[at]))) {
      ++at;
    }
    return at;
  }

  std::string text_;
};

TEST(RunReport, SaveThenParseRoundTrips) {
  obs::RunReport report;
  report.name = "round-trip-unit";
  report.wall_seconds = 2.5;
  report.simulated_seconds = 10.0;
  report.events = 1234;
  report.scalars["throughput"] = 0.75;
  report.scalars["stations"] = 4.0;

  obs::Registry registry;
  registry.counter("events", {{"type", "idle"}}).add(7);
  report.metrics = registry.snapshot();

  const std::string path = "roundtrip_report.json";
  report.save(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  in.close();
  std::remove(path.c_str());

  const MiniJsonReader json(buffer.str());
  EXPECT_EQ(json.string_after("schema"), "plc-run-report/1");
  EXPECT_EQ(json.string_after("name"), "round-trip-unit");
  EXPECT_DOUBLE_EQ(json.number_after("wall_seconds"), 2.5);
  EXPECT_DOUBLE_EQ(json.number_after("simulated_seconds"), 10.0);
  EXPECT_DOUBLE_EQ(json.number_after("events"), 1234.0);
  EXPECT_DOUBLE_EQ(json.number_after("events_per_second"), 1234.0 / 2.5);
  EXPECT_DOUBLE_EQ(json.number_after("throughput"), 0.75);
  EXPECT_DOUBLE_EQ(json.number_after("stations"), 4.0);
  // The metrics snapshot made it through with its labels and value.
  EXPECT_TRUE(json.contains("\"type\": \"idle\""));
  EXPECT_DOUBLE_EQ(json.number_after("value"), 7.0);
}

}  // namespace
}  // namespace plc
