// The MAC device registry (mac::MacDef / mac::MacSpec / mac::Registry):
// def lookup and registration errors, spec-form round-trips as fixed
// points, the canonical/cache-key serializers, the TDMA and boosted-CW
// defs' semantics, and slot-vs-event equivalence for every registered
// def end to end through run_scenario.
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "des/random.hpp"
#include "macdef/registry.hpp"
#include "obs/json.hpp"
#include "scenario/spec.hpp"
#include "scenario/run.hpp"
#include "sim/runner.hpp"
#include "util/error.hpp"

namespace plc::mac {
namespace {

/// A plc-scenario/1 mac object for `config` of `def` — what
/// write_mac_variant emits for label "L".
std::string spec_object_json(const MacDef& def, const void* config) {
  std::ostringstream out;
  obs::JsonWriter json(out);
  json.begin_object();
  json.field("label", "L");
  json.field("type", def.name);
  def.write_spec_fields(json, config);
  json.end_object();
  return out.str();
}

std::string canonical_json(const MacDef& def, const void* config) {
  std::ostringstream out;
  obs::JsonWriter json(out);
  json.begin_object();
  json.field("type", def.name);
  def.write_canonical_fields(json, config);
  json.end_object();
  return out.str();
}

// --- Registry ----------------------------------------------------------------

TEST(MacRegistry, BuiltinsArePresentWithAliases) {
  const Registry& registry = builtin_registry();
  ASSERT_EQ(registry.defs().size(), 4u);
  for (const char* name : {"1901", "dcf", "tdma", "boosted-cw"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
    EXPECT_EQ(registry.find(name), &registry.get(name)) << name;
  }
  // Aliases resolve to the same def as the canonical name.
  EXPECT_EQ(registry.find("homeplug-av"), registry.find("1901"));
  EXPECT_EQ(registry.find("802.11"), registry.find("dcf"));
  EXPECT_EQ(registry.find("boosted"), registry.find("boosted-cw"));
  EXPECT_EQ(registry.find("no-such-mac"), nullptr);
}

TEST(MacRegistry, UnknownNameErrorListsTheRegisteredNames) {
  try {
    builtin_registry().get("csma-cd");
    FAIL() << "expected plc::Error";
  } catch (const plc::Error& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("csma-cd"), std::string::npos) << message;
    for (const char* name : {"1901", "dcf", "tdma", "boosted-cw"}) {
      EXPECT_NE(message.find(name), std::string::npos) << message;
    }
  }
}

TEST(MacRegistry, RejectsDuplicateNamesAndAliases) {
  Registry registry;
  registry.add(&kMacDef1901);
  EXPECT_THROW(registry.add(&kMacDef1901), plc::Error);
  // A fresh def whose *alias* collides with a registered name.
  static constexpr const char* kClash[] = {"1901"};
  MacDef alias_clash;
  alias_clash.name = "other";
  alias_clash.aliases = kClash;
  alias_clash.alias_count = 1;
  EXPECT_THROW(registry.add(&alias_clash), plc::Error);
  // And a name colliding with a registered alias.
  MacDef name_clash;
  name_clash.name = "homeplug-av";
  EXPECT_THROW(registry.add(&name_clash), plc::Error);
}

// --- MacSpec -----------------------------------------------------------------

TEST(MacSpec, DefaultIsThe1901DefWithCa0Ca1) {
  const MacSpec spec;
  EXPECT_EQ(&spec.def(), &default_def());
  EXPECT_STREQ(spec.def().name, "1901");
  ASSERT_NE(spec.backoff_config(), nullptr);
  EXPECT_EQ(spec.backoff_config()->cw, BackoffConfig::ca0_ca1().cw);
  EXPECT_EQ(spec.backoff_config()->dc, BackoffConfig::ca0_ca1().dc);
  EXPECT_EQ(spec.dcf_config(), nullptr);
}

TEST(MacSpec, FamilyViewsMatchTheDef) {
  const MacSpec the_1901(BackoffConfig::ca2_ca3());
  EXPECT_NE(the_1901.backoff_config(), nullptr);
  EXPECT_EQ(the_1901.dcf_config(), nullptr);

  const MacSpec the_dcf(dcf::DcfConfig{16, 1024});
  EXPECT_EQ(the_dcf.backoff_config(), nullptr);
  ASSERT_NE(the_dcf.dcf_config(), nullptr);
  EXPECT_EQ(the_dcf.dcf_config()->cw_min, 16);

  // boosted-cw is 1901-family (its resolved schedule) but not dcf.
  const MacDef& boosted = builtin_registry().get("boosted-cw");
  const MacSpec the_boosted(boosted, boosted.default_config());
  ASSERT_NE(the_boosted.backoff_config(), nullptr);
  EXPECT_EQ(the_boosted.backoff_config()->dc[0], kDeferralDisabled);
  EXPECT_EQ(the_boosted.dcf_config(), nullptr);

  // tdma has neither family view nor a model solver.
  const MacDef& tdma = builtin_registry().get("tdma");
  const MacSpec the_tdma(tdma, tdma.default_config());
  EXPECT_EQ(the_tdma.backoff_config(), nullptr);
  EXPECT_EQ(the_tdma.dcf_config(), nullptr);
  EXPECT_EQ(tdma.solve, nullptr);
}

// --- Serialization round-trips ----------------------------------------------

TEST(MacDefJson, SpecFormIsAFixedPointForEveryDef) {
  for (const MacDef* def : builtin_registry().defs()) {
    const std::shared_ptr<const void> config = def->default_config();
    const std::string first = spec_object_json(*def, config.get());
    const obs::JsonValue parsed = obs::parse_json(first);
    const std::shared_ptr<const void> reparsed =
        def->parse(parsed, "spec.macs[0]", "L");
    EXPECT_EQ(spec_object_json(*def, reparsed.get()), first) << def->name;
    // The canonical (cache-key) form survives the round-trip too.
    EXPECT_EQ(canonical_json(*def, reparsed.get()),
              canonical_json(*def, config.get()))
        << def->name;
    EXPECT_NO_THROW(def->validate(reparsed.get())) << def->name;
  }
}

TEST(MacDefJson, CanonicalFormDropsCosmeticNames) {
  // Two 1901 configs differing only in the cosmetic name must share a
  // cache key but serialize distinctly in spec form.
  BackoffConfig a = BackoffConfig::ca0_ca1();
  BackoffConfig b = BackoffConfig::ca0_ca1();
  b.name = "renamed";
  const MacSpec spec_a(a);
  const MacSpec spec_b(b);
  EXPECT_EQ(canonical_json(spec_a.def(), spec_a.config()),
            canonical_json(spec_b.def(), spec_b.config()));
  EXPECT_NE(spec_object_json(spec_a.def(), spec_a.config()),
            spec_object_json(spec_b.def(), spec_b.config()));
}

TEST(MacDefJson, ScenarioParserListsKnownNamesOnUnknownType) {
  try {
    scenario::Spec::from_json(R"({"name": "x", "macs": [{"label": "a",
        "type": "csma-cd"}], "stations": [2]})");
    FAIL() << "expected plc::Error";
  } catch (const plc::Error& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("unknown MAC type"), std::string::npos) << message;
    EXPECT_NE(message.find("tdma"), std::string::npos) << message;
    EXPECT_NE(message.find("boosted-cw"), std::string::npos) << message;
  }
}

TEST(MacDefJson, AliasesParseToTheCanonicalTypeName) {
  // "homeplug-av" parses, and the canonical form re-serializes as the
  // stable def name — aliases are an input convenience only.
  const scenario::Spec spec = scenario::Spec::from_json(R"({
    "name": "alias", "macs": [{"label": "a", "type": "homeplug-av",
    "preset": "ca0_ca1"}], "stations": [2]})");
  EXPECT_NE(spec.to_json().find("\"type\": \"1901\""), std::string::npos);
}

// --- TDMA semantics ----------------------------------------------------------

scenario::Spec tdma_spec(int round, std::vector<int> stations) {
  scenario::Spec spec;
  spec.name = "tdma-test";
  const MacDef& tdma = builtin_registry().get("tdma");
  std::ostringstream json;
  json << R"({"label": "TDMA", "type": "tdma", "round": )" << round << "}";
  spec.macs = {scenario::MacVariant{
      "TDMA", sim::MacSpec(tdma, tdma.parse(obs::parse_json(json.str()),
                                            "spec.macs[0]", "TDMA"))}};
  spec.stations = std::move(stations);
  spec.duration = des::SimTime::from_seconds(1.0);
  spec.repetitions = 1;
  spec.legs.model = false;
  return spec;
}

TEST(Tdma, RoundRobinIsCollisionFreeWhenRoundCoversStations) {
  const sim::RunSpec run = tdma_spec(4, {4}).to_run_spec(4);
  sim::EventKernel kernel = sim::make_event_kernel(run, 0);
  kernel.enable_winner_trace(true);
  const sim::SlotSimResults results = kernel.run_events(64);
  EXPECT_EQ(results.collision_events, 0);
  EXPECT_GT(results.successes, 0);
  // Winners rotate 0,1,2,3,0,1,... — station i owns offset i.
  for (std::size_t w = 0; w < kernel.winners().size(); ++w) {
    EXPECT_EQ(kernel.winners()[w], static_cast<int>(w % 4)) << w;
  }
}

TEST(Tdma, OverloadedRoundCollidesDeterministically) {
  // round=2 with 4 stations: {0,2} and {1,3} share offsets forever.
  const sim::RunSpec run = tdma_spec(2, {4}).to_run_spec(4);
  sim::EventKernel kernel = sim::make_event_kernel(run, 0);
  const sim::SlotSimResults results = kernel.run_events(32);
  EXPECT_EQ(results.successes, 0);
  EXPECT_GT(results.collision_events, 0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_GT(results.tx_collision[static_cast<std::size_t>(i)], 0) << i;
  }
}

// --- Kernel equivalence over the new defs ------------------------------------

/// Byte-identical reports for slot vs event × jobs 1 vs 4 — the CI
/// kernel-equivalence contract, here for the defs the CI scenarios did
/// not exist for when the equivalence gate was first built.
void expect_kernel_equivalence(scenario::Spec spec) {
  std::vector<std::string> serialized;
  for (const sim::Kernel kernel : {sim::Kernel::kSlot, sim::Kernel::kEvent}) {
    for (const int jobs : {1, 4}) {
      spec.kernel = kernel;
      scenario::RunOptions options;
      options.jobs = jobs;
      const scenario::RunOutcome outcome = run_scenario(spec, options);
      std::ostringstream out;
      outcome.report.write_json(out);
      serialized.push_back(out.str());
    }
  }
  for (std::size_t i = 1; i < serialized.size(); ++i) {
    EXPECT_EQ(serialized[0], serialized[i]) << i;
  }
}

TEST(KernelEquivalence, TdmaMatchesAcrossKernelsAndJobs) {
  expect_kernel_equivalence(tdma_spec(8, {3, 8, 12}));
}

TEST(KernelEquivalence, BoostedCwMatchesAcrossKernelsAndJobs) {
  scenario::Spec spec = scenario::Spec::from_json(R"({
    "name": "boosted-test",
    "macs": [{"label": "B5", "type": "boosted-cw", "target_stations": 5}],
    "stations": [2, 5],
    "duration_ns": 1000000000,
    "repetitions": 2,
    "seed": "0xB005"})");
  expect_kernel_equivalence(spec);
}

}  // namespace
}  // namespace plc::mac
