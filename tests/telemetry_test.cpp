// The live telemetry plane: downsampling time series, the hub's
// aggregation + OpenMetrics exposition, the HTTP endpoint, the progress
// heartbeat's task-based ETA formatting, and the crash flight recorder.
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/telemetry.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sim/parallel_runner.hpp"
#include "sim/runner.hpp"
#include "util/socket.hpp"

namespace {

using namespace plc;

// ---------------------------------------------------------------- series

TEST(TimeSeries, KeepsEverythingBelowCapacity) {
  obs::TimeSeries series(8);
  for (int i = 0; i < 7; ++i) {
    series.record(static_cast<double>(i), static_cast<double>(i * 10));
  }
  ASSERT_EQ(series.points().size(), 7u);
  EXPECT_EQ(series.stride(), 1);
  EXPECT_EQ(series.offered(), 7);
  for (int i = 0; i < 7; ++i) {
    EXPECT_DOUBLE_EQ(series.points()[i].t_seconds, i);
    EXPECT_DOUBLE_EQ(series.points()[i].value, i * 10.0);
  }
}

TEST(TimeSeries, CompactionHalvesAndDoublesStride) {
  obs::TimeSeries series(8);
  for (int i = 0; i < 8; ++i) {
    series.record(static_cast<double>(i), 0.0);
  }
  // Reaching capacity compacts proactively: even-indexed survivors plus
  // stride doubling, so the buffer always has room for the next accept.
  EXPECT_EQ(series.stride(), 2);
  EXPECT_EQ(series.points().size(), 4u);
  EXPECT_EQ(series.offered(), 8);
  for (std::size_t i = 0; i < series.points().size(); ++i) {
    EXPECT_DOUBLE_EQ(series.points()[i].t_seconds, 2.0 * i);
  }
}

TEST(TimeSeries, LongStreamStaysBoundedAndSpansTheRun) {
  obs::TimeSeries series(16);
  constexpr int kOffers = 100'000;
  for (int i = 0; i < kOffers; ++i) {
    series.record(static_cast<double>(i), static_cast<double>(i));
  }
  EXPECT_LE(series.points().size(), 16u);
  EXPECT_GE(series.points().size(), 4u);
  EXPECT_EQ(series.offered(), kOffers);
  // Retained points cover the whole stream, not the newest window.
  EXPECT_LT(series.points().front().t_seconds, kOffers / 4.0);
  EXPECT_GT(series.points().back().t_seconds, kOffers / 2.0);
  // Monotone time: compaction must preserve order.
  for (std::size_t i = 1; i < series.points().size(); ++i) {
    EXPECT_LT(series.points()[i - 1].t_seconds,
              series.points()[i].t_seconds);
  }
}

TEST(TimeSeriesSet, JsonAndJsonlRoundTrip) {
  obs::TimeSeriesSet set(8);
  set.record("a", 0.5, 1.0);
  set.record("a", 1.5, 2.0);
  set.record("b", 0.25, -3.5);

  const obs::JsonValue parsed = obs::parse_json(set.to_json());
  ASSERT_TRUE(parsed.is_array());
  ASSERT_EQ(parsed.items.size(), 2u);
  EXPECT_EQ(parsed.items[0].find("series")->text, "a");
  EXPECT_EQ(parsed.items[0].find("points")->items.size(), 2u);
  EXPECT_EQ(parsed.items[1].find("series")->text, "b");

  std::ostringstream jsonl;
  set.write_jsonl(jsonl);
  std::istringstream lines(jsonl.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    const obs::JsonValue row = obs::parse_json(line);
    ASSERT_TRUE(row.is_object());
    EXPECT_NE(row.find("series"), nullptr);
    EXPECT_NE(row.find("t"), nullptr);
    EXPECT_NE(row.find("value"), nullptr);
    ++count;
  }
  EXPECT_EQ(count, 3);
}

// -------------------------------------------------------------- escaping

// Property: every escaped string round-trips through the JSON parser,
// whatever bytes went in — the shared escaper is what makes the JSONL
// log sink and the exposition labels injection-proof.
TEST(Escaping, JsonEscapeRoundTripsArbitraryBytes) {
  std::uint64_t state = 0x1901;
  const auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<char>((state >> 33) & 0x7F);
  };
  for (int trial = 0; trial < 200; ++trial) {
    std::string raw;
    for (int i = 0; i < trial % 32; ++i) raw.push_back(next());
    raw += "\"\\\n\r\t";  // Always include the dangerous characters.
    const std::string wrapped = "\"" + obs::json_escape(raw) + "\"";
    const obs::JsonValue parsed = obs::parse_json(wrapped);
    ASSERT_TRUE(parsed.is_string());
    EXPECT_EQ(parsed.text, raw) << "trial " << trial;
  }
}

TEST(Escaping, OpenMetricsEscapesExactlyTheSpecTriple) {
  // OpenMetrics label values escape backslash, quote and newline — and
  // nothing else (a tab or CR is legal payload there).
  EXPECT_EQ(obs::openmetrics_escape("plain"), "plain");
  EXPECT_EQ(obs::openmetrics_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::openmetrics_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::openmetrics_escape("a\nb"), "a\\nb");
  EXPECT_EQ(obs::openmetrics_escape("a\tb"), "a\tb");
}

// ------------------------------------------------------------------- hub

void seed_registry(obs::Registry& registry) {
  registry.counter("des.events_dispatched").add(42);
  registry.gauge("sweep.load").set(0.75);
  registry.histogram("task.seconds").observe(0.5);
  registry.histogram("task.seconds").observe(1.5);
  registry.counter("tx.frames", {{"station", "node \"1\""}}).add(7);
}

TEST(OpenMetrics, GoldenRenderForSeededRegistry) {
  obs::Registry registry;
  seed_registry(registry);
  const std::string text = obs::openmetrics_render(registry.snapshot());
  const std::string expected =
      "# TYPE plc_des_events_dispatched counter\n"
      "plc_des_events_dispatched_total 42\n"
      "# TYPE plc_sweep_load gauge\n"
      "plc_sweep_load 0.75\n"
      "# TYPE plc_task_seconds summary\n"
      "plc_task_seconds_count 2\n"
      "plc_task_seconds_sum 2\n"
      "# TYPE plc_tx_frames counter\n"
      "plc_tx_frames_total{station=\"node \\\"1\\\"\"} 7\n"
      "# EOF\n";
  EXPECT_EQ(text, expected);
}

TEST(TelemetryHub, TracksTaskLifecycle) {
  obs::TelemetryHub hub;
  hub.begin_tasks(4);
  hub.task_started();
  hub.task_started();
  obs::TelemetryHub::TaskEnd end;
  end.used_store = true;
  end.store_hit = true;
  end.queue_wait_seconds = 0.01;
  end.task_seconds = 0.25;
  hub.task_finished(end);

  const obs::TelemetryHub::Progress progress = hub.progress();
  EXPECT_EQ(progress.tasks_total, 4);
  EXPECT_EQ(progress.tasks_completed, 1);
  EXPECT_EQ(progress.tasks_in_flight, 1);
  EXPECT_EQ(progress.store_hits, 1);
  EXPECT_EQ(progress.store_misses, 0);
  EXPECT_GT(progress.tasks_per_second, 0.0);
  EXPECT_GE(progress.eta_seconds, 0.0);

  const std::string metrics = hub.openmetrics();
  EXPECT_NE(metrics.find("plc_sweep_tasks_completed_total 1"),
            std::string::npos);
  EXPECT_NE(metrics.find("plc_sweep_store_hits_total 1"),
            std::string::npos);
  EXPECT_NE(metrics.find("# EOF\n"), std::string::npos);

  const obs::JsonValue parsed = obs::parse_json(hub.progress_json());
  EXPECT_EQ(parsed.find("schema")->text, "plc-progress/1");
  EXPECT_DOUBLE_EQ(parsed.find("tasks")->find("completed")->number, 1.0);
}

TEST(TelemetryHub, AbsorbMergesAndProbesEvaluateLazily) {
  obs::TelemetryHub hub;
  obs::Registry registry;
  seed_registry(registry);
  hub.absorb(registry.snapshot());
  double probe_value = 1.0;
  hub.add_probe("store.hits", [&probe_value] { return probe_value; });
  probe_value = 9.0;  // Probes must read at scrape time, not add time.
  const std::string metrics = hub.openmetrics();
  EXPECT_NE(metrics.find("plc_des_events_dispatched_total 42"),
            std::string::npos);
  EXPECT_NE(metrics.find("plc_store_hits 9"), std::string::npos);
}

TEST(TelemetryHub, TryVariantsWorkWhenUncontended) {
  obs::TelemetryHub hub;
  hub.begin_tasks(2);
  obs::TelemetryHub::Progress progress;
  ASSERT_TRUE(hub.try_progress(&progress));
  EXPECT_EQ(progress.tasks_total, 2);
  obs::Snapshot snapshot;
  ASSERT_TRUE(hub.try_metrics_snapshot(&snapshot));
  EXPECT_NE(snapshot.find("sweep.tasks_total"), nullptr);
}

// ------------------------------------------------------------ exposition

TEST(ExpositionServer, RoutesAndErrorPaths) {
  obs::TelemetryHub hub;
  hub.begin_tasks(1);
  obs::ExpositionServer server(hub, {});

  const std::string metrics =
      server.handle_request("GET /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("application/openmetrics-text"),
            std::string::npos);
  EXPECT_NE(metrics.find("# EOF"), std::string::npos);

  const std::string progress =
      server.handle_request("GET /progress?x=1 HTTP/1.1\r\n\r\n");
  EXPECT_NE(progress.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(progress.find("plc-progress/1"), std::string::npos);

  EXPECT_NE(server.handle_request("GET /nope HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 404"),
            std::string::npos);
  EXPECT_NE(server.handle_request("POST /metrics HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 405"),
            std::string::npos);
  EXPECT_NE(server.handle_request("garbage").find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_NE(server.handle_request("").find("HTTP/1.1 400"),
            std::string::npos);
}

std::string http_get(int port, const std::string& path) {
  util::Socket client = util::Socket::connect_tcp("127.0.0.1", port);
  client.send_all("GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
  std::string response;
  while (true) {
    const std::string chunk = client.recv_some();
    if (chunk.empty()) break;
    response += chunk;
  }
  return response;
}

TEST(ExpositionServer, ServesRealSockets) {
  obs::TelemetryHub hub;
  hub.begin_tasks(3);
  obs::ExpositionServer server(hub, {});  // Ephemeral port.
  server.start();
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("plc_sweep_tasks_total 3"), std::string::npos);
  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("ok"), std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_GE(server.requests_served(), 2);
}

TEST(ExpositionServer, SurvivesConcurrentScrapesDuringSweep) {
  obs::TelemetryHub hub;
  obs::ExpositionServer server(hub, {});
  server.start();

  std::atomic<bool> done{false};
  std::atomic<int> scrapes{0};
  std::thread scraper([&] {
    while (!done.load()) {
      const std::string response = http_get(server.port(), "/metrics");
      if (response.find("# EOF") != std::string::npos) {
        scrapes.fetch_add(1);
      }
    }
  });

  std::vector<sim::RunSpec> specs;
  for (const int stations : {2, 5}) {
    sim::RunSpec spec;
    spec.stations = stations;
    spec.duration = des::SimTime::from_seconds(5.0);
    spec.repetitions = 3;
    specs.push_back(spec);
  }
  sim::ParallelRunner runner(2);
  sim::RunObservability obs;
  obs.telemetry = &hub;
  const std::vector<sim::RunSummary> summaries =
      runner.run_points(specs, obs);
  done.store(true);
  scraper.join();
  server.stop();

  ASSERT_EQ(summaries.size(), specs.size());
  EXPECT_GT(scrapes.load(), 0);
  const obs::TelemetryHub::Progress progress = hub.progress();
  EXPECT_EQ(progress.tasks_completed, 6);
  EXPECT_EQ(progress.tasks_in_flight, 0);
}

// -------------------------------------------------------------- progress

TEST(Progress, FormatDurationBrief) {
  EXPECT_EQ(obs::format_duration_brief(-1.0), "?");
  EXPECT_EQ(obs::format_duration_brief(0.0), "0.0s");
  EXPECT_EQ(obs::format_duration_brief(12.34), "12.3s");
  EXPECT_EQ(obs::format_duration_brief(61.0), "1m01s");
  EXPECT_EQ(obs::format_duration_brief(3599.0), "59m59s");
  EXPECT_EQ(obs::format_duration_brief(3600.0), "1h00m");
  EXPECT_EQ(obs::format_duration_brief(7265.0), "2h01m");
}

TEST(Progress, TaskGoalDrivesHeartbeatLine) {
  std::ostringstream out;
  obs::ProgressMeter::Options popts;
  popts.interval_wall_seconds = 0.0;
  popts.out = &out;
  obs::ProgressMeter meter(des::SimTime::from_seconds(10.0), popts);
  meter.set_task_goal(4);
  meter.task_complete();
  meter.sample_coarse(des::SimTime::from_seconds(1.0), 1000);
  const std::string text = out.str();
  EXPECT_NE(text.find("tasks 1/4"), std::string::npos) << text;
}

// ------------------------------------------------------- flight recorder

TEST(FlightRecorder, DumpCarriesTraceMetricsAndProgress) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("plc-test-flight-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  obs::TraceSink trace;
  for (int i = 0; i < 5; ++i) {
    obs::TraceEvent event;
    event.phase = obs::TracePhase::kInstant;
    event.name = "tick";
    event.category = "test";
    event.start = des::SimTime::from_ns(i * 100);
    trace.record(event);
  }
  obs::Registry registry;
  seed_registry(registry);
  obs::TelemetryHub hub;
  hub.begin_tasks(2);

  obs::FlightRecorder& recorder = obs::FlightRecorder::instance();
  obs::FlightRecorder::Options options;
  options.directory = dir.string();
  options.trace_tail = 3;
  recorder.arm(options);
  recorder.attach_trace(&trace);
  recorder.attach_registry(&registry);
  recorder.attach_hub(&hub);

  const std::string path = recorder.dump("unit test");
  ASSERT_FALSE(path.empty());
  // Second dump is suppressed: first crash wins.
  EXPECT_TRUE(recorder.dump("again").empty());
  recorder.disarm();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const obs::JsonValue dump = obs::parse_json(buffer.str());
  EXPECT_EQ(dump.find("schema")->text, "plc-flight-record/1");
  EXPECT_EQ(dump.find("reason")->text, "unit test");
  const obs::JsonValue* trace_section = dump.find("trace");
  ASSERT_NE(trace_section, nullptr);
  EXPECT_DOUBLE_EQ(trace_section->find("recorded")->number, 5.0);
  EXPECT_EQ(trace_section->find("events")->items.size(), 3u);
  const obs::JsonValue* progress = dump.find("progress");
  ASSERT_NE(progress, nullptr);
  EXPECT_DOUBLE_EQ(progress->find("tasks_total")->number, 2.0);
  ASSERT_NE(dump.find("metrics"), nullptr);
  EXPECT_TRUE(dump.find("metrics")->is_array());

  std::filesystem::remove_all(dir);
}

TEST(FlightRecorder, RearmResetsTheDumpedLatch) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("plc-test-flight2-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  obs::FlightRecorder& recorder = obs::FlightRecorder::instance();
  obs::FlightRecorder::Options options;
  options.directory = dir.string();
  recorder.arm(options);
  EXPECT_FALSE(recorder.dump("first").empty());
  recorder.arm(options);  // Re-arm resets the once-latch.
  EXPECT_FALSE(recorder.dump("second").empty());
  recorder.disarm();
  std::filesystem::remove_all(dir);
}

// ----------------------------------------------- report stays untouched

TEST(Telemetry, HubNeverLeaksIntoParallelReports) {
  sim::RunSpec spec;
  spec.stations = 3;
  spec.duration = des::SimTime::from_seconds(5.0);
  spec.repetitions = 2;

  sim::ParallelRunner runner(2);
  const obs::RunReport plain =
      runner.run_point_report(spec, "t", sim::RunObservability{});

  obs::TelemetryHub hub;
  sim::RunObservability with_hub;
  with_hub.telemetry = &hub;
  const obs::RunReport observed =
      runner.run_point_report(spec, "t", with_hub);

  EXPECT_EQ(plain.scalars, observed.scalars);
  EXPECT_GT(hub.progress().tasks_completed, 0);
}

}  // namespace
