// scenario::Spec / Registry / run_scenario: JSON round-trips, strict
// parsing, the RunSpec/TestbedConfig bridges, and the driver's
// jobs-independence (byte-identical reports).
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "des/random.hpp"
#include "scenario/registry.hpp"
#include "scenario/run.hpp"
#include "scenario/spec.hpp"
#include "util/error.hpp"

namespace plc::scenario {
namespace {

Spec tiny_spec() {
  Spec spec;
  spec.name = "tiny";
  spec.title = "tiny determinism scenario";
  spec.macs = {MacVariant{"CA1", mac::BackoffConfig::ca0_ca1()},
               MacVariant{"DCF", dcf::DcfConfig{16, 1024}}};
  spec.stations = {2, 3};
  spec.duration = des::SimTime::from_seconds(1.0);
  spec.repetitions = 2;
  spec.seed = 0x7E57;
  spec.legs.sim = true;
  spec.legs.model = true;
  spec.legs.exact_pair = true;
  spec.legs.testbed = false;
  spec.reference["paper"] = {0.1, 0.2};
  return spec;
}

// --- JSON round-trips --------------------------------------------------------

TEST(SpecJson, CanonicalFormIsAFixedPoint) {
  const Spec spec = tiny_spec();
  const std::string first = spec.to_json();
  const Spec parsed = Spec::from_json(first);
  EXPECT_EQ(parsed.to_json(), first);
  EXPECT_EQ(parsed.name, spec.name);
  EXPECT_EQ(parsed.stations, spec.stations);
  EXPECT_EQ(parsed.repetitions, spec.repetitions);
  EXPECT_EQ(parsed.seed, spec.seed);
  EXPECT_EQ(parsed.duration, spec.duration);
  EXPECT_EQ(parsed.reference, spec.reference);
}

TEST(SpecJson, EveryRegistrySpecRoundTrips) {
  for (const std::string& name : Registry::names()) {
    const Spec spec = Registry::get(name);
    const std::string json = spec.to_json();
    EXPECT_EQ(Spec::from_json(json).to_json(), json) << name;
  }
}

TEST(SpecJson, SeedSurvivesAboveDoublePrecision) {
  Spec spec = tiny_spec();
  spec.seed = 0xFFFF'FFFF'FFFF'FFFFull;  // Would be lossy as a JSON number.
  const Spec parsed = Spec::from_json(spec.to_json());
  EXPECT_EQ(parsed.seed, spec.seed);
}

TEST(SpecJson, MacVariantsRoundTripBothAlternatives) {
  const Spec parsed = Spec::from_json(tiny_spec().to_json());
  ASSERT_EQ(parsed.macs.size(), 2u);
  ASSERT_NE(parsed.macs[0].mac.backoff_config(), nullptr);
  const auto& ca1 = *parsed.macs[0].mac.backoff_config();
  EXPECT_EQ(ca1.cw, mac::BackoffConfig::ca0_ca1().cw);
  EXPECT_EQ(ca1.dc, mac::BackoffConfig::ca0_ca1().dc);
  ASSERT_NE(parsed.macs[1].mac.dcf_config(), nullptr);
  EXPECT_EQ(parsed.macs[1].mac.dcf_config()->cw_min, 16);
  EXPECT_EQ(parsed.macs[1].mac.dcf_config()->cw_max, 1024);
}

TEST(SpecJson, AcceptsPresetShorthand) {
  const Spec spec = Spec::from_json(R"({
    "name": "presets",
    "macs": [
      {"label": "CA3", "type": "1901", "preset": "ca2_ca3"},
      {"label": "DCF-b", "type": "dcf", "preset": "ieee80211b"}
    ],
    "stations": [2]
  })");
  EXPECT_EQ(spec.macs[0].mac.backoff_config()->cw,
            mac::BackoffConfig::ca2_ca3().cw);
  EXPECT_EQ(spec.macs[1].mac.dcf_config()->cw_min,
            dcf::DcfConfig::ieee80211b().cw_min);
}

// The "kernel" key selects the contention kernel on parse but is never
// emitted: reports embed the spec JSON, and slot/event runs must stay
// byte-identical (the kernel-equivalence CI contract).
TEST(SpecJson, KernelKeyParsesButIsNeverEmitted) {
  Spec spec = tiny_spec();
  std::string json = spec.to_json();
  EXPECT_EQ(json.find("\"kernel\""), std::string::npos);

  // Splice the key into the canonical form: it must parse...
  const std::string with_kernel =
      "{\"kernel\": \"event\"," + json.substr(1);
  const Spec parsed = Spec::from_json(with_kernel);
  EXPECT_EQ(parsed.kernel, sim::Kernel::kEvent);
  // ...and serialize back WITHOUT it, bytes equal to the original.
  EXPECT_EQ(parsed.to_json(), json);

  EXPECT_EQ(Spec::from_json("{\"kernel\": \"slot\"," + json.substr(1)).kernel,
            sim::Kernel::kSlot);
  EXPECT_EQ(Spec::from_json(json).kernel, sim::Kernel::kAuto);
  EXPECT_THROW(Spec::from_json("{\"kernel\": \"warp\"," + json.substr(1)),
               plc::Error);
}

// --- Strict validation -------------------------------------------------------

TEST(SpecJson, RejectsUnknownKeysAtEveryLevel) {
  EXPECT_THROW(
      Spec::from_json(R"({"name": "x", "macs": [{"label": "a", "type":
      "1901", "preset": "ca0_ca1"}], "stations": [2], "bogus": 1})"),
      plc::Error);
  EXPECT_THROW(
      Spec::from_json(R"({"name": "x", "macs": [{"label": "a", "type":
      "1901", "preset": "ca0_ca1", "bogus": 1}], "stations": [2]})"),
      plc::Error);
  EXPECT_THROW(
      Spec::from_json(R"({"name": "x", "macs": [{"label": "a", "type":
      "1901", "preset": "ca0_ca1"}], "stations": [2],
      "timing": {"bogus_ns": 1}})"),
      plc::Error);
  EXPECT_THROW(
      Spec::from_json(R"({"name": "x", "macs": [{"label": "a", "type":
      "1901", "preset": "ca0_ca1"}], "stations": [2],
      "legs": {"bogus": true}})"),
      plc::Error);
  EXPECT_THROW(
      Spec::from_json(R"({"name": "x", "macs": [{"label": "a", "type":
      "1901", "preset": "ca0_ca1"}], "stations": [2],
      "testbed": {"bogus": 1}})"),
      plc::Error);
}

TEST(SpecJson, RejectsInvalidMacShapes) {
  // CW/DC length mismatch goes through BackoffConfig::validate.
  EXPECT_THROW(
      Spec::from_json(R"({"name": "x", "macs": [{"label": "a", "type":
      "1901", "cw": [8, 16], "dc": [0]}], "stations": [2]})"),
      plc::Error);
  // DCF windows must be ordered.
  EXPECT_THROW(
      Spec::from_json(R"({"name": "x", "macs": [{"label": "a", "type":
      "dcf", "cw_min": 64, "cw_max": 16}], "stations": [2]})"),
      plc::Error);
  // Unknown MAC type.
  EXPECT_THROW(
      Spec::from_json(R"({"name": "x", "macs": [{"label": "a", "type":
      "csma-cd"}], "stations": [2]})"),
      plc::Error);
}

TEST(SpecValidate, CatchesStructuralMistakes) {
  EXPECT_THROW(
      {
        Spec spec = tiny_spec();
        spec.stations.clear();
        spec.validate();
      },
      plc::Error);
  EXPECT_THROW(
      {
        Spec spec = tiny_spec();
        spec.macs[1].label = spec.macs[0].label;  // Duplicate label.
        spec.validate();
      },
      plc::Error);
  EXPECT_THROW(
      {
        Spec spec = tiny_spec();
        spec.reference["paper"] = {0.1};  // Not aligned with stations.
        spec.validate();
      },
      plc::Error);
  EXPECT_THROW(
      {
        Spec spec = tiny_spec();
        spec.repetitions = 0;
        spec.validate();
      },
      plc::Error);
}

// --- Registry ----------------------------------------------------------------

TEST(Registry, BuiltInsArePresentAndValid) {
  const std::vector<std::string> names = Registry::names();
  for (const char* expected :
       {"figure2", "table2", "e6-throughput-vs-n", "e8-boosting",
        "dcf-comparison"}) {
    EXPECT_TRUE(Registry::contains(expected)) << expected;
  }
  for (const std::string& name : names) {
    const Spec spec = Registry::get(name);
    EXPECT_EQ(spec.name, name);
    EXPECT_NO_THROW(spec.validate());
  }
  EXPECT_FALSE(Registry::contains("no-such-scenario"));
  EXPECT_THROW(Registry::get("no-such-scenario"), plc::Error);
}

// --- Bridges -----------------------------------------------------------------

TEST(Bridge, RunSpecCarriesEveryField) {
  const Spec spec = tiny_spec();
  const sim::RunSpec run = spec.to_run_spec(3, 1);
  EXPECT_EQ(run.stations, 3);
  EXPECT_EQ(run.frame_length, spec.frame_length);
  EXPECT_EQ(run.duration, spec.duration);
  EXPECT_EQ(run.repetitions, spec.repetitions);
  EXPECT_EQ(run.timing.slot, spec.timing.slot);
  EXPECT_EQ(run.timing.success_overhead, spec.timing.success_overhead);
  ASSERT_NE(run.mac.dcf_config(), nullptr);
  // Seeds derive from (root seed, variant label, N) — reproducible and
  // distinct per point.
  const des::RandomStream root(spec.seed);
  EXPECT_EQ(run.seed, root.derive_seed("sim-DCF-n3"));
  EXPECT_NE(spec.to_run_spec(2, 1).seed, run.seed);
  EXPECT_NE(spec.to_run_spec(3, 0).seed, run.seed);
}

TEST(Bridge, TestbedConfigCarriesTimingAndDerivedSeed) {
  Spec spec = tiny_spec();
  spec.testbed_duration = des::SimTime::from_seconds(7.0);
  const tools::TestbedConfig config = spec.to_testbed_config(2, 1);
  EXPECT_EQ(config.stations, 2);
  EXPECT_EQ(config.duration, spec.testbed_duration);
  EXPECT_EQ(config.timing.slot, spec.timing.slot);
  const des::RandomStream root(spec.seed);
  EXPECT_EQ(config.seed, root.derive_seed("testbed-CA1-n2-t1"));
  EXPECT_NE(spec.to_testbed_config(2, 0).seed, config.seed);
}

TEST(Bridge, VariantIndexIsBoundsChecked) {
  const Spec spec = tiny_spec();
  EXPECT_THROW(spec.to_run_spec(2, 2), plc::Error);
  EXPECT_THROW(spec.to_testbed_config(2, 0, 2), plc::Error);
}

// --- Driver ------------------------------------------------------------------

TEST(RunScenario, ReportIsByteIdenticalAcrossJobsCounts) {
  const Spec spec = tiny_spec();
  std::vector<std::string> serialized;
  for (const int jobs : {1, 4}) {
    RunOptions options;
    options.jobs = jobs;
    const RunOutcome outcome = run_scenario(spec, options);
    EXPECT_EQ(outcome.report.wall_seconds, 0.0);
    std::ostringstream out;
    outcome.report.write_json(out);
    serialized.push_back(out.str());
  }
  EXPECT_EQ(serialized[0], serialized[1]);
}

TEST(RunScenario, ReportCarriesSpecAndScalars) {
  const Spec spec = tiny_spec();
  const RunOutcome outcome = run_scenario(spec);
  EXPECT_EQ(outcome.report.name, "tiny");
  EXPECT_EQ(outcome.report.scenario, spec.to_json());
  // One scalar per (variant, N, metric) plus exact-pair and reference.
  for (const char* key :
       {"CA1.n2.sim_collision_probability", "CA1.n2.sim_throughput",
        "CA1.n2.model_collision_probability", "CA1.n2.model_throughput",
        "CA1.n2.exact_collision_probability", "DCF.n3.sim_throughput",
        "DCF.n3.model_collision_probability", "reference.paper.n2"}) {
    EXPECT_TRUE(outcome.report.scalars.count(key) == 1) << key;
  }
  // The DCF variant must not get an exact-pair scalar.
  EXPECT_EQ(outcome.report.scalars.count("DCF.n2.exact_collision_probability"),
            0u);
  EXPECT_GT(outcome.report.simulated_seconds, 0.0);
  EXPECT_GT(outcome.report.events, 0);
  // The embedded spec re-parses to the same canonical document (the
  // provenance chain: report -> spec -> identical rerun).
  EXPECT_EQ(Spec::from_json(outcome.report.scenario).to_json(),
            outcome.report.scenario);
}

TEST(RunScenario, TestbedLegProducesPerStationScalars) {
  Spec spec;
  spec.name = "testbed-tiny";
  spec.macs = {MacVariant{"CA1", mac::BackoffConfig::ca0_ca1()}};
  spec.stations = {2};
  spec.legs.sim = false;
  spec.legs.model = false;
  spec.legs.testbed = true;
  spec.testbed_tests = 2;
  spec.testbed_duration = des::SimTime::from_seconds(2.0);
  const RunOutcome outcome = run_scenario(spec);
  for (const char* key :
       {"CA1.n2.testbed_collision_mean", "CA1.n2.testbed_collision_stddev",
        "CA1.n2.testbed_collided", "CA1.n2.testbed_acknowledged"}) {
    EXPECT_TRUE(outcome.report.scalars.count(key) == 1) << key;
  }
  EXPECT_GT(outcome.report.scalars.at("CA1.n2.testbed_acknowledged"), 0.0);
}

}  // namespace
}  // namespace plc::scenario
