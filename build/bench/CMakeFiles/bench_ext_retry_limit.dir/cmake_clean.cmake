file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_retry_limit.dir/bench_ext_retry_limit.cpp.o"
  "CMakeFiles/bench_ext_retry_limit.dir/bench_ext_retry_limit.cpp.o.d"
  "bench_ext_retry_limit"
  "bench_ext_retry_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_retry_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
