# Empty dependencies file for bench_figure2_collision_probability.
# This may be replaced when dependencies are built.
