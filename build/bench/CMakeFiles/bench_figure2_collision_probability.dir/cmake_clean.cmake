file(REMOVE_RECURSE
  "CMakeFiles/bench_figure2_collision_probability.dir/bench_figure2_collision_probability.cpp.o"
  "CMakeFiles/bench_figure2_collision_probability.dir/bench_figure2_collision_probability.cpp.o.d"
  "bench_figure2_collision_probability"
  "bench_figure2_collision_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure2_collision_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
