# Empty dependencies file for bench_ext_mme_overhead.
# This may be replaced when dependencies are built.
