
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_figure1_trace.cpp" "bench/CMakeFiles/bench_figure1_trace.dir/bench_figure1_trace.cpp.o" "gcc" "bench/CMakeFiles/bench_figure1_trace.dir/bench_figure1_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tools/CMakeFiles/plc_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/plc_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/mme/CMakeFiles/plc_mme.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/plc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/plc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dcf/CMakeFiles/plc_dcf.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/plc_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/medium/CMakeFiles/plc_medium.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/plc_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/plc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/frames/CMakeFiles/plc_frames.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/plc_des.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/plc_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/plc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
