# Empty compiler generated dependencies file for bench_ext_tdma_qos.
# This may be replaced when dependencies are built.
