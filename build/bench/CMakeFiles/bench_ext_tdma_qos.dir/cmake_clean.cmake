file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_tdma_qos.dir/bench_ext_tdma_qos.cpp.o"
  "CMakeFiles/bench_ext_tdma_qos.dir/bench_ext_tdma_qos.cpp.o.d"
  "bench_ext_tdma_qos"
  "bench_ext_tdma_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_tdma_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
