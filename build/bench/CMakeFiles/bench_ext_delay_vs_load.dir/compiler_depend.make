# Empty compiler generated dependencies file for bench_ext_delay_vs_load.
# This may be replaced when dependencies are built.
