# Empty dependencies file for bench_ext_throughput_vs_n.
# This may be replaced when dependencies are built.
