file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_priority_classes.dir/bench_ext_priority_classes.cpp.o"
  "CMakeFiles/bench_ext_priority_classes.dir/bench_ext_priority_classes.cpp.o.d"
  "bench_ext_priority_classes"
  "bench_ext_priority_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_priority_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
