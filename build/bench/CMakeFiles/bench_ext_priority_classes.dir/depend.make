# Empty dependencies file for bench_ext_priority_classes.
# This may be replaced when dependencies are built.
