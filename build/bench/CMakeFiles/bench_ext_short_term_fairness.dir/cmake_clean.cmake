file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_short_term_fairness.dir/bench_ext_short_term_fairness.cpp.o"
  "CMakeFiles/bench_ext_short_term_fairness.dir/bench_ext_short_term_fairness.cpp.o.d"
  "bench_ext_short_term_fairness"
  "bench_ext_short_term_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_short_term_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
