# Empty compiler generated dependencies file for bench_ext_short_term_fairness.
# This may be replaced when dependencies are built.
