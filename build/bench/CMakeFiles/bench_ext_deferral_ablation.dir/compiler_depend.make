# Empty compiler generated dependencies file for bench_ext_deferral_ablation.
# This may be replaced when dependencies are built.
