# Empty dependencies file for bench_ext_boosting_configs.
# This may be replaced when dependencies are built.
