file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_boosting_configs.dir/bench_ext_boosting_configs.cpp.o"
  "CMakeFiles/bench_ext_boosting_configs.dir/bench_ext_boosting_configs.cpp.o.d"
  "bench_ext_boosting_configs"
  "bench_ext_boosting_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_boosting_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
