# Empty compiler generated dependencies file for bench_ext_tonemap_adaptation.
# This may be replaced when dependencies are built.
