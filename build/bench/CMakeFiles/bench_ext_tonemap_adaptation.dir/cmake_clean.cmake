file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_tonemap_adaptation.dir/bench_ext_tonemap_adaptation.cpp.o"
  "CMakeFiles/bench_ext_tonemap_adaptation.dir/bench_ext_tonemap_adaptation.cpp.o.d"
  "bench_ext_tonemap_adaptation"
  "bench_ext_tonemap_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_tonemap_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
