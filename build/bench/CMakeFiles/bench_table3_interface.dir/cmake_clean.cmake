file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_interface.dir/bench_table3_interface.cpp.o"
  "CMakeFiles/bench_table3_interface.dir/bench_table3_interface.cpp.o.d"
  "bench_table3_interface"
  "bench_table3_interface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_interface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
