file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_frame_length.dir/bench_ext_frame_length.cpp.o"
  "CMakeFiles/bench_ext_frame_length.dir/bench_ext_frame_length.cpp.o.d"
  "bench_ext_frame_length"
  "bench_ext_frame_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_frame_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
