# Empty dependencies file for bench_ext_frame_length.
# This may be replaced when dependencies are built.
