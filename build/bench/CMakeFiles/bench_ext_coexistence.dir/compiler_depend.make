# Empty compiler generated dependencies file for bench_ext_coexistence.
# This may be replaced when dependencies are built.
