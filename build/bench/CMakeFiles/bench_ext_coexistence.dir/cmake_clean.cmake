file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_coexistence.dir/bench_ext_coexistence.cpp.o"
  "CMakeFiles/bench_ext_coexistence.dir/bench_ext_coexistence.cpp.o.d"
  "bench_ext_coexistence"
  "bench_ext_coexistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_coexistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
