# Empty compiler generated dependencies file for medium_mac_test.
# This may be replaced when dependencies are built.
