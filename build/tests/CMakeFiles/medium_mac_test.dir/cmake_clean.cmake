file(REMOVE_RECURSE
  "CMakeFiles/medium_mac_test.dir/medium_mac_test.cpp.o"
  "CMakeFiles/medium_mac_test.dir/medium_mac_test.cpp.o.d"
  "medium_mac_test"
  "medium_mac_test.pdb"
  "medium_mac_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medium_mac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
