file(REMOVE_RECURSE
  "CMakeFiles/backoff_test.dir/backoff_test.cpp.o"
  "CMakeFiles/backoff_test.dir/backoff_test.cpp.o.d"
  "backoff_test"
  "backoff_test.pdb"
  "backoff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backoff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
