# Empty compiler generated dependencies file for backoff_test.
# This may be replaced when dependencies are built.
