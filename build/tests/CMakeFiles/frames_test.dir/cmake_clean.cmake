file(REMOVE_RECURSE
  "CMakeFiles/frames_test.dir/frames_test.cpp.o"
  "CMakeFiles/frames_test.dir/frames_test.cpp.o.d"
  "frames_test"
  "frames_test.pdb"
  "frames_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frames_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
