file(REMOVE_RECURSE
  "CMakeFiles/slot_sim_test.dir/slot_sim_test.cpp.o"
  "CMakeFiles/slot_sim_test.dir/slot_sim_test.cpp.o.d"
  "slot_sim_test"
  "slot_sim_test.pdb"
  "slot_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slot_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
