# Empty compiler generated dependencies file for slot_sim_test.
# This may be replaced when dependencies are built.
