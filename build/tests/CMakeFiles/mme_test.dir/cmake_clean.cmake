file(REMOVE_RECURSE
  "CMakeFiles/mme_test.dir/mme_test.cpp.o"
  "CMakeFiles/mme_test.dir/mme_test.cpp.o.d"
  "mme_test"
  "mme_test.pdb"
  "mme_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
