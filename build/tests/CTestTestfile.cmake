# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/des_test[1]_include.cmake")
include("/root/repo/build/tests/phy_test[1]_include.cmake")
include("/root/repo/build/tests/frames_test[1]_include.cmake")
include("/root/repo/build/tests/mme_test[1]_include.cmake")
include("/root/repo/build/tests/backoff_test[1]_include.cmake")
include("/root/repo/build/tests/medium_mac_test[1]_include.cmake")
include("/root/repo/build/tests/slot_sim_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/emu_test[1]_include.cmake")
include("/root/repo/build/tests/tools_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/adaptation_test[1]_include.cmake")
include("/root/repo/build/tests/beacon_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
