file(REMOVE_RECURSE
  "CMakeFiles/backoff_trace.dir/backoff_trace.cpp.o"
  "CMakeFiles/backoff_trace.dir/backoff_trace.cpp.o.d"
  "backoff_trace"
  "backoff_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backoff_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
