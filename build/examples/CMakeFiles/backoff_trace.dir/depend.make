# Empty dependencies file for backoff_trace.
# This may be replaced when dependencies are built.
