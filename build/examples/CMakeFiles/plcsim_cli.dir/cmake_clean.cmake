file(REMOVE_RECURSE
  "CMakeFiles/plcsim_cli.dir/plcsim_cli.cpp.o"
  "CMakeFiles/plcsim_cli.dir/plcsim_cli.cpp.o.d"
  "plcsim"
  "plcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plcsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
