# Empty compiler generated dependencies file for plcsim_cli.
# This may be replaced when dependencies are built.
