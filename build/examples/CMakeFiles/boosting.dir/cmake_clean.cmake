file(REMOVE_RECURSE
  "CMakeFiles/boosting.dir/boosting.cpp.o"
  "CMakeFiles/boosting.dir/boosting.cpp.o.d"
  "boosting"
  "boosting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boosting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
