# Empty dependencies file for boosting.
# This may be replaced when dependencies are built.
