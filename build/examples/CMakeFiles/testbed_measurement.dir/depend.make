# Empty dependencies file for testbed_measurement.
# This may be replaced when dependencies are built.
