file(REMOVE_RECURSE
  "CMakeFiles/testbed_measurement.dir/testbed_measurement.cpp.o"
  "CMakeFiles/testbed_measurement.dir/testbed_measurement.cpp.o.d"
  "testbed_measurement"
  "testbed_measurement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testbed_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
