# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_backoff_trace "/root/repo/build/examples/backoff_trace" "20" "7")
set_tests_properties(example_backoff_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_boosting "/root/repo/build/examples/boosting" "8")
set_tests_properties(example_boosting PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_sim "plcsim" "sim" "--n" "3" "--time-s" "5")
set_tests_properties(cli_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_model "plcsim" "model" "--n" "4")
set_tests_properties(cli_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_sweep_csv "plcsim" "sweep" "--n-max" "3" "--time-s" "2" "--csv")
set_tests_properties(cli_sweep_csv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_boost "plcsim" "boost" "--n" "8")
set_tests_properties(cli_boost PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_delay "plcsim" "delay" "--n" "2" "--load" "0.3" "--time-s" "10")
set_tests_properties(cli_delay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_usage_error "plcsim" "nonsense")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_capture_roundtrip "sh" "-c" "./plcsim testbed --n 2 --time-s 3 --capture cap_test.plcc > /dev/null && ./plcsim capture --file cap_test.plcc --head 2 && rm cap_test.plcc")
set_tests_properties(cli_capture_roundtrip PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
