file(REMOVE_RECURSE
  "CMakeFiles/plc_metrics.dir/fairness.cpp.o"
  "CMakeFiles/plc_metrics.dir/fairness.cpp.o.d"
  "libplc_metrics.a"
  "libplc_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plc_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
