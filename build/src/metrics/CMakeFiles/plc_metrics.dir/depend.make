# Empty dependencies file for plc_metrics.
# This may be replaced when dependencies are built.
