file(REMOVE_RECURSE
  "libplc_metrics.a"
)
