# Empty compiler generated dependencies file for plc_tools.
# This may be replaced when dependencies are built.
