file(REMOVE_RECURSE
  "CMakeFiles/plc_tools.dir/ampstat.cpp.o"
  "CMakeFiles/plc_tools.dir/ampstat.cpp.o.d"
  "CMakeFiles/plc_tools.dir/capture.cpp.o"
  "CMakeFiles/plc_tools.dir/capture.cpp.o.d"
  "CMakeFiles/plc_tools.dir/faifa.cpp.o"
  "CMakeFiles/plc_tools.dir/faifa.cpp.o.d"
  "CMakeFiles/plc_tools.dir/testbed.cpp.o"
  "CMakeFiles/plc_tools.dir/testbed.cpp.o.d"
  "libplc_tools.a"
  "libplc_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plc_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
