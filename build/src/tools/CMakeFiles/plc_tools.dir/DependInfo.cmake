
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tools/ampstat.cpp" "src/tools/CMakeFiles/plc_tools.dir/ampstat.cpp.o" "gcc" "src/tools/CMakeFiles/plc_tools.dir/ampstat.cpp.o.d"
  "/root/repo/src/tools/capture.cpp" "src/tools/CMakeFiles/plc_tools.dir/capture.cpp.o" "gcc" "src/tools/CMakeFiles/plc_tools.dir/capture.cpp.o.d"
  "/root/repo/src/tools/faifa.cpp" "src/tools/CMakeFiles/plc_tools.dir/faifa.cpp.o" "gcc" "src/tools/CMakeFiles/plc_tools.dir/faifa.cpp.o.d"
  "/root/repo/src/tools/testbed.cpp" "src/tools/CMakeFiles/plc_tools.dir/testbed.cpp.o" "gcc" "src/tools/CMakeFiles/plc_tools.dir/testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/emu/CMakeFiles/plc_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/plc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/plc_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/mme/CMakeFiles/plc_mme.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/plc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/plc_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/medium/CMakeFiles/plc_medium.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/plc_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/frames/CMakeFiles/plc_frames.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/plc_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
