file(REMOVE_RECURSE
  "libplc_tools.a"
)
