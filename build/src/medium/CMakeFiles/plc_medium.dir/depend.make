# Empty dependencies file for plc_medium.
# This may be replaced when dependencies are built.
