file(REMOVE_RECURSE
  "libplc_medium.a"
)
