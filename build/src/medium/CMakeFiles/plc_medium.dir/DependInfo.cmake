
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/medium/beacon.cpp" "src/medium/CMakeFiles/plc_medium.dir/beacon.cpp.o" "gcc" "src/medium/CMakeFiles/plc_medium.dir/beacon.cpp.o.d"
  "/root/repo/src/medium/domain.cpp" "src/medium/CMakeFiles/plc_medium.dir/domain.cpp.o" "gcc" "src/medium/CMakeFiles/plc_medium.dir/domain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phy/CMakeFiles/plc_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/frames/CMakeFiles/plc_frames.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/plc_des.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/plc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
