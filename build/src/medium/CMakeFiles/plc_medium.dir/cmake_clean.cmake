file(REMOVE_RECURSE
  "CMakeFiles/plc_medium.dir/beacon.cpp.o"
  "CMakeFiles/plc_medium.dir/beacon.cpp.o.d"
  "CMakeFiles/plc_medium.dir/domain.cpp.o"
  "CMakeFiles/plc_medium.dir/domain.cpp.o.d"
  "libplc_medium.a"
  "libplc_medium.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plc_medium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
