# Empty compiler generated dependencies file for plc_workload.
# This may be replaced when dependencies are built.
