file(REMOVE_RECURSE
  "CMakeFiles/plc_workload.dir/sources.cpp.o"
  "CMakeFiles/plc_workload.dir/sources.cpp.o.d"
  "libplc_workload.a"
  "libplc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
