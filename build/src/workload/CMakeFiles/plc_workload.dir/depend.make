# Empty dependencies file for plc_workload.
# This may be replaced when dependencies are built.
