file(REMOVE_RECURSE
  "libplc_workload.a"
)
