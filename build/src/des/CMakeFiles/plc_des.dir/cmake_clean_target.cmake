file(REMOVE_RECURSE
  "libplc_des.a"
)
