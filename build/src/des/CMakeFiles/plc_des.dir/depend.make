# Empty dependencies file for plc_des.
# This may be replaced when dependencies are built.
