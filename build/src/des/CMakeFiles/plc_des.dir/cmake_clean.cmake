file(REMOVE_RECURSE
  "CMakeFiles/plc_des.dir/random.cpp.o"
  "CMakeFiles/plc_des.dir/random.cpp.o.d"
  "CMakeFiles/plc_des.dir/scheduler.cpp.o"
  "CMakeFiles/plc_des.dir/scheduler.cpp.o.d"
  "CMakeFiles/plc_des.dir/time.cpp.o"
  "CMakeFiles/plc_des.dir/time.cpp.o.d"
  "libplc_des.a"
  "libplc_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plc_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
