file(REMOVE_RECURSE
  "CMakeFiles/plc_dcf.dir/dcf.cpp.o"
  "CMakeFiles/plc_dcf.dir/dcf.cpp.o.d"
  "libplc_dcf.a"
  "libplc_dcf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plc_dcf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
