file(REMOVE_RECURSE
  "libplc_dcf.a"
)
