# Empty dependencies file for plc_dcf.
# This may be replaced when dependencies are built.
