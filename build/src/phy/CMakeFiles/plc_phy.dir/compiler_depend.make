# Empty compiler generated dependencies file for plc_phy.
# This may be replaced when dependencies are built.
