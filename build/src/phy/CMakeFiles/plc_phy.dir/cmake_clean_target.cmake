file(REMOVE_RECURSE
  "libplc_phy.a"
)
