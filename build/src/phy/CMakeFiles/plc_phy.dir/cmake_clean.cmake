file(REMOVE_RECURSE
  "CMakeFiles/plc_phy.dir/channel.cpp.o"
  "CMakeFiles/plc_phy.dir/channel.cpp.o.d"
  "CMakeFiles/plc_phy.dir/timing.cpp.o"
  "CMakeFiles/plc_phy.dir/timing.cpp.o.d"
  "CMakeFiles/plc_phy.dir/tonemap.cpp.o"
  "CMakeFiles/plc_phy.dir/tonemap.cpp.o.d"
  "libplc_phy.a"
  "libplc_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plc_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
