file(REMOVE_RECURSE
  "libplc_util.a"
)
