file(REMOVE_RECURSE
  "CMakeFiles/plc_util.dir/csv.cpp.o"
  "CMakeFiles/plc_util.dir/csv.cpp.o.d"
  "CMakeFiles/plc_util.dir/error.cpp.o"
  "CMakeFiles/plc_util.dir/error.cpp.o.d"
  "CMakeFiles/plc_util.dir/math.cpp.o"
  "CMakeFiles/plc_util.dir/math.cpp.o.d"
  "CMakeFiles/plc_util.dir/stats.cpp.o"
  "CMakeFiles/plc_util.dir/stats.cpp.o.d"
  "CMakeFiles/plc_util.dir/strings.cpp.o"
  "CMakeFiles/plc_util.dir/strings.cpp.o.d"
  "CMakeFiles/plc_util.dir/table.cpp.o"
  "CMakeFiles/plc_util.dir/table.cpp.o.d"
  "libplc_util.a"
  "libplc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
