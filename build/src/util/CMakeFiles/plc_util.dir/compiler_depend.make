# Empty compiler generated dependencies file for plc_util.
# This may be replaced when dependencies are built.
