# Empty compiler generated dependencies file for plc_mac.
# This may be replaced when dependencies are built.
