file(REMOVE_RECURSE
  "libplc_mac.a"
)
