
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/backoff.cpp" "src/mac/CMakeFiles/plc_mac.dir/backoff.cpp.o" "gcc" "src/mac/CMakeFiles/plc_mac.dir/backoff.cpp.o.d"
  "/root/repo/src/mac/config.cpp" "src/mac/CMakeFiles/plc_mac.dir/config.cpp.o" "gcc" "src/mac/CMakeFiles/plc_mac.dir/config.cpp.o.d"
  "/root/repo/src/mac/station.cpp" "src/mac/CMakeFiles/plc_mac.dir/station.cpp.o" "gcc" "src/mac/CMakeFiles/plc_mac.dir/station.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/medium/CMakeFiles/plc_medium.dir/DependInfo.cmake"
  "/root/repo/build/src/frames/CMakeFiles/plc_frames.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/plc_des.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/plc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/plc_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
