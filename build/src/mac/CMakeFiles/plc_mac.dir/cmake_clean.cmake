file(REMOVE_RECURSE
  "CMakeFiles/plc_mac.dir/backoff.cpp.o"
  "CMakeFiles/plc_mac.dir/backoff.cpp.o.d"
  "CMakeFiles/plc_mac.dir/config.cpp.o"
  "CMakeFiles/plc_mac.dir/config.cpp.o.d"
  "CMakeFiles/plc_mac.dir/station.cpp.o"
  "CMakeFiles/plc_mac.dir/station.cpp.o.d"
  "libplc_mac.a"
  "libplc_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plc_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
