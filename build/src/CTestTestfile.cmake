# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("des")
subdirs("phy")
subdirs("frames")
subdirs("mme")
subdirs("medium")
subdirs("mac")
subdirs("dcf")
subdirs("emu")
subdirs("tools")
subdirs("sim")
subdirs("analysis")
subdirs("workload")
subdirs("metrics")
