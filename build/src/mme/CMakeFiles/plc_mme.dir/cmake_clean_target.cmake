file(REMOVE_RECURSE
  "libplc_mme.a"
)
