file(REMOVE_RECURSE
  "CMakeFiles/plc_mme.dir/ampstat.cpp.o"
  "CMakeFiles/plc_mme.dir/ampstat.cpp.o.d"
  "CMakeFiles/plc_mme.dir/header.cpp.o"
  "CMakeFiles/plc_mme.dir/header.cpp.o.d"
  "CMakeFiles/plc_mme.dir/sniffer.cpp.o"
  "CMakeFiles/plc_mme.dir/sniffer.cpp.o.d"
  "CMakeFiles/plc_mme.dir/tonemap_update.cpp.o"
  "CMakeFiles/plc_mme.dir/tonemap_update.cpp.o.d"
  "libplc_mme.a"
  "libplc_mme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plc_mme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
