# Empty compiler generated dependencies file for plc_mme.
# This may be replaced when dependencies are built.
