file(REMOVE_RECURSE
  "libplc_analysis.a"
)
