
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/delay.cpp" "src/analysis/CMakeFiles/plc_analysis.dir/delay.cpp.o" "gcc" "src/analysis/CMakeFiles/plc_analysis.dir/delay.cpp.o.d"
  "/root/repo/src/analysis/drift.cpp" "src/analysis/CMakeFiles/plc_analysis.dir/drift.cpp.o" "gcc" "src/analysis/CMakeFiles/plc_analysis.dir/drift.cpp.o.d"
  "/root/repo/src/analysis/exact_chain.cpp" "src/analysis/CMakeFiles/plc_analysis.dir/exact_chain.cpp.o" "gcc" "src/analysis/CMakeFiles/plc_analysis.dir/exact_chain.cpp.o.d"
  "/root/repo/src/analysis/heterogeneous.cpp" "src/analysis/CMakeFiles/plc_analysis.dir/heterogeneous.cpp.o" "gcc" "src/analysis/CMakeFiles/plc_analysis.dir/heterogeneous.cpp.o.d"
  "/root/repo/src/analysis/model_1901.cpp" "src/analysis/CMakeFiles/plc_analysis.dir/model_1901.cpp.o" "gcc" "src/analysis/CMakeFiles/plc_analysis.dir/model_1901.cpp.o.d"
  "/root/repo/src/analysis/model_dcf.cpp" "src/analysis/CMakeFiles/plc_analysis.dir/model_dcf.cpp.o" "gcc" "src/analysis/CMakeFiles/plc_analysis.dir/model_dcf.cpp.o.d"
  "/root/repo/src/analysis/optimizer.cpp" "src/analysis/CMakeFiles/plc_analysis.dir/optimizer.cpp.o" "gcc" "src/analysis/CMakeFiles/plc_analysis.dir/optimizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mac/CMakeFiles/plc_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/plc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/plc_des.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/plc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dcf/CMakeFiles/plc_dcf.dir/DependInfo.cmake"
  "/root/repo/build/src/medium/CMakeFiles/plc_medium.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/plc_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/plc_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/plc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/frames/CMakeFiles/plc_frames.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
