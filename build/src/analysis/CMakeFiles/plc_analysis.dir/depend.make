# Empty dependencies file for plc_analysis.
# This may be replaced when dependencies are built.
