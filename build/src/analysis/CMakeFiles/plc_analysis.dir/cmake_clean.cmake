file(REMOVE_RECURSE
  "CMakeFiles/plc_analysis.dir/delay.cpp.o"
  "CMakeFiles/plc_analysis.dir/delay.cpp.o.d"
  "CMakeFiles/plc_analysis.dir/drift.cpp.o"
  "CMakeFiles/plc_analysis.dir/drift.cpp.o.d"
  "CMakeFiles/plc_analysis.dir/exact_chain.cpp.o"
  "CMakeFiles/plc_analysis.dir/exact_chain.cpp.o.d"
  "CMakeFiles/plc_analysis.dir/heterogeneous.cpp.o"
  "CMakeFiles/plc_analysis.dir/heterogeneous.cpp.o.d"
  "CMakeFiles/plc_analysis.dir/model_1901.cpp.o"
  "CMakeFiles/plc_analysis.dir/model_1901.cpp.o.d"
  "CMakeFiles/plc_analysis.dir/model_dcf.cpp.o"
  "CMakeFiles/plc_analysis.dir/model_dcf.cpp.o.d"
  "CMakeFiles/plc_analysis.dir/optimizer.cpp.o"
  "CMakeFiles/plc_analysis.dir/optimizer.cpp.o.d"
  "libplc_analysis.a"
  "libplc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
