file(REMOVE_RECURSE
  "libplc_sim.a"
)
