# Empty dependencies file for plc_sim.
# This may be replaced when dependencies are built.
