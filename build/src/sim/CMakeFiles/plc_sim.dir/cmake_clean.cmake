file(REMOVE_RECURSE
  "CMakeFiles/plc_sim.dir/runner.cpp.o"
  "CMakeFiles/plc_sim.dir/runner.cpp.o.d"
  "CMakeFiles/plc_sim.dir/sim_1901.cpp.o"
  "CMakeFiles/plc_sim.dir/sim_1901.cpp.o.d"
  "CMakeFiles/plc_sim.dir/slot_simulator.cpp.o"
  "CMakeFiles/plc_sim.dir/slot_simulator.cpp.o.d"
  "CMakeFiles/plc_sim.dir/unsaturated.cpp.o"
  "CMakeFiles/plc_sim.dir/unsaturated.cpp.o.d"
  "libplc_sim.a"
  "libplc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
