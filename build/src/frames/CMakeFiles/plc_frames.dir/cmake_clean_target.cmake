file(REMOVE_RECURSE
  "libplc_frames.a"
)
