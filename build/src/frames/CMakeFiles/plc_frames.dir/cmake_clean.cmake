file(REMOVE_RECURSE
  "CMakeFiles/plc_frames.dir/ethernet.cpp.o"
  "CMakeFiles/plc_frames.dir/ethernet.cpp.o.d"
  "CMakeFiles/plc_frames.dir/mac_address.cpp.o"
  "CMakeFiles/plc_frames.dir/mac_address.cpp.o.d"
  "CMakeFiles/plc_frames.dir/mpdu.cpp.o"
  "CMakeFiles/plc_frames.dir/mpdu.cpp.o.d"
  "CMakeFiles/plc_frames.dir/pb.cpp.o"
  "CMakeFiles/plc_frames.dir/pb.cpp.o.d"
  "CMakeFiles/plc_frames.dir/sack.cpp.o"
  "CMakeFiles/plc_frames.dir/sack.cpp.o.d"
  "libplc_frames.a"
  "libplc_frames.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plc_frames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
