
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frames/ethernet.cpp" "src/frames/CMakeFiles/plc_frames.dir/ethernet.cpp.o" "gcc" "src/frames/CMakeFiles/plc_frames.dir/ethernet.cpp.o.d"
  "/root/repo/src/frames/mac_address.cpp" "src/frames/CMakeFiles/plc_frames.dir/mac_address.cpp.o" "gcc" "src/frames/CMakeFiles/plc_frames.dir/mac_address.cpp.o.d"
  "/root/repo/src/frames/mpdu.cpp" "src/frames/CMakeFiles/plc_frames.dir/mpdu.cpp.o" "gcc" "src/frames/CMakeFiles/plc_frames.dir/mpdu.cpp.o.d"
  "/root/repo/src/frames/pb.cpp" "src/frames/CMakeFiles/plc_frames.dir/pb.cpp.o" "gcc" "src/frames/CMakeFiles/plc_frames.dir/pb.cpp.o.d"
  "/root/repo/src/frames/sack.cpp" "src/frames/CMakeFiles/plc_frames.dir/sack.cpp.o" "gcc" "src/frames/CMakeFiles/plc_frames.dir/sack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/des/CMakeFiles/plc_des.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/plc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
