# Empty compiler generated dependencies file for plc_frames.
# This may be replaced when dependencies are built.
