
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/emu/device.cpp" "src/emu/CMakeFiles/plc_emu.dir/device.cpp.o" "gcc" "src/emu/CMakeFiles/plc_emu.dir/device.cpp.o.d"
  "/root/repo/src/emu/firmware_counters.cpp" "src/emu/CMakeFiles/plc_emu.dir/firmware_counters.cpp.o" "gcc" "src/emu/CMakeFiles/plc_emu.dir/firmware_counters.cpp.o.d"
  "/root/repo/src/emu/network.cpp" "src/emu/CMakeFiles/plc_emu.dir/network.cpp.o" "gcc" "src/emu/CMakeFiles/plc_emu.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mac/CMakeFiles/plc_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/medium/CMakeFiles/plc_medium.dir/DependInfo.cmake"
  "/root/repo/build/src/mme/CMakeFiles/plc_mme.dir/DependInfo.cmake"
  "/root/repo/build/src/frames/CMakeFiles/plc_frames.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/plc_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/plc_des.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/plc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
