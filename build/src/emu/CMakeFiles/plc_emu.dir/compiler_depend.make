# Empty compiler generated dependencies file for plc_emu.
# This may be replaced when dependencies are built.
