file(REMOVE_RECURSE
  "CMakeFiles/plc_emu.dir/device.cpp.o"
  "CMakeFiles/plc_emu.dir/device.cpp.o.d"
  "CMakeFiles/plc_emu.dir/firmware_counters.cpp.o"
  "CMakeFiles/plc_emu.dir/firmware_counters.cpp.o.d"
  "CMakeFiles/plc_emu.dir/network.cpp.o"
  "CMakeFiles/plc_emu.dir/network.cpp.o.d"
  "libplc_emu.a"
  "libplc_emu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plc_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
