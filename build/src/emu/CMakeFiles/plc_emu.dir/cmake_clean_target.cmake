file(REMOVE_RECURSE
  "libplc_emu.a"
)
