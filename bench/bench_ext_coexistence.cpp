// E12 (extended): coexistence — what happens when a station with a tuned
// ("boosted") configuration shares the strip with default stations?
// Exact two-station chain for N = 2, slot simulation for larger N. This
// quantifies the fairness cost of unilateral tuning, a question the
// boosting theme raises immediately.
#include <iostream>
#include <memory>

#include "analysis/exact_chain.hpp"
#include "bench_main.hpp"
#include "mac/config.hpp"
#include "phy/timing.hpp"
#include "sim/slot_simulator.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace plc;

mac::BackoffConfig aggressive_config() {
  // A throughput-greedy unilateral tune: stay at CW 4-8 and never defer.
  // d >= CW-1 can never expire within one countdown, so these values
  // disable the deferral mechanism while keeping the exact chain's state
  // space small.
  mac::BackoffConfig config;
  config.name = "greedy";
  config.cw = {4, 8};
  config.dc = {3, 7};
  return config;
}

}  // namespace

int main() {
  plc::bench::Harness harness("ext_coexistence");
  const mac::BackoffConfig ca1 = mac::BackoffConfig::ca0_ca1();
  const mac::BackoffConfig greedy = aggressive_config();
  const phy::TimingConfig timing = phy::TimingConfig::paper_default();

  std::cout << "=== E12: coexistence of a tuned station with defaults "
               "===\n\n";

  // Exact N = 2 answer.
  {
    const analysis::ExactPairResult exact =
        analysis::solve_exact_pair(greedy, ca1, 4000, 1e-10);
    std::cout << "--- N = 2, exact joint chain (greedy vs default) ---\n";
    util::TablePrinter table({"quantity", "value"});
    table.add_row({"greedy station's success share",
                   util::format_fixed(exact.success_share_a(), 4)});
    table.add_row({"collision probability (network)",
                   util::format_fixed(exact.collision_probability, 4)});
    table.add_row({"P(idle) / P(success) / P(collision)",
                   util::format_fixed(exact.p_idle, 3) + " / " +
                       util::format_fixed(exact.p_success, 3) + " / " +
                       util::format_fixed(exact.p_collision, 3)});
    table.print(std::cout);
    std::cout << "\n";
    harness.scalar("exact.greedy_share") = exact.success_share_a();
    harness.scalar("exact.collision_probability") =
        exact.collision_probability;
  }

  // Simulation for 1 greedy + k defaults.
  std::cout << "--- 1 greedy + k default stations, 200 s simulation ---\n";
  util::TablePrinter table({"stations (1+k)", "greedy share",
                            "fair share", "network coll. prob",
                            "norm. throughput"});
  for (const int defaults : {1, 2, 4, 9}) {
    std::vector<std::unique_ptr<mac::BackoffEntity>> entities;
    des::RandomStream root(0xC0E);
    entities.push_back(std::make_unique<mac::Backoff1901>(
        greedy, des::RandomStream(root.derive_seed("greedy"))));
    for (int i = 0; i < defaults; ++i) {
      entities.push_back(std::make_unique<mac::Backoff1901>(
          ca1, des::RandomStream(
                   root.derive_seed("def-" + std::to_string(i)))));
    }
    sim::SlotSimulator simulator(std::move(entities), timing);
    const sim::SlotSimResults results =
        simulator.run(des::SimTime::from_seconds(200.0));
    const double share =
        static_cast<double>(results.tx_success[0]) /
        static_cast<double>(results.successes);
    table.add_row(
        {"1+" + std::to_string(defaults), util::format_fixed(share, 4),
         util::format_fixed(1.0 / (1.0 + defaults), 4),
         util::format_fixed(results.collision_probability(), 4),
         util::format_fixed(
             results.normalized_throughput(des::SimTime::from_us(2050.0)),
             4)});
    const std::string prefix = "k" + std::to_string(defaults) + ".";
    harness.scalar(prefix + "greedy_share") = share;
    harness.scalar(prefix + "collision_probability") =
        results.collision_probability();
    harness.add_simulated_seconds(200.0);
  }
  table.print(std::cout);

  std::cout << "\nShape checks: the greedy station takes far more than "
               "its fair share (the defaults' deferral counters back off "
               "for it), and the network-wide collision probability rises "
               "— unilateral boosting is a fairness problem, which is why "
               "the paper tunes *network-wide* configurations.\n";
  return harness.finish();
}
