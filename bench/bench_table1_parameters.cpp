// E1 / Table 1: IEEE 1901 contention windows CW_i and initial deferral
// counter values d_i per backoff stage, for the CA0/CA1 and CA2/CA3
// priority classes — printed from the framework's presets so a mismatch
// against the standard is impossible to miss.
#include <iostream>
#include <string>

#include "bench_main.hpp"
#include "mac/config.hpp"
#include "util/table.hpp"

int main() {
  using plc::mac::BackoffConfig;
  plc::bench::Harness harness("table1_parameters");

  std::cout << "=== Table 1: IEEE 1901 CW_i and d_i per backoff stage ===\n";
  std::cout << "(paper: Vlachou et al., Table 1; BPC >= 3 re-uses the "
               "last stage)\n\n";

  const BackoffConfig ca01 = BackoffConfig::ca0_ca1();
  const BackoffConfig ca23 = BackoffConfig::ca2_ca3();

  plc::util::TablePrinter table(
      {"backoff stage i", "BPC", "CA0/CA1 CWi", "CA0/CA1 di",
       "CA2/CA3 CWi", "CA2/CA3 di"});
  for (int stage = 0; stage < ca01.stage_count(); ++stage) {
    const std::string bpc =
        stage + 1 == ca01.stage_count() ? ">= " + std::to_string(stage)
                                        : std::to_string(stage);
    table.add_row({std::to_string(stage), bpc,
                   std::to_string(ca01.cw[static_cast<std::size_t>(stage)]),
                   std::to_string(ca01.dc[static_cast<std::size_t>(stage)]),
                   std::to_string(ca23.cw[static_cast<std::size_t>(stage)]),
                   std::to_string(ca23.dc[static_cast<std::size_t>(stage)])});
    const std::string prefix = "stage" + std::to_string(stage) + ".";
    harness.scalar(prefix + "ca0_ca1_cw") =
        ca01.cw[static_cast<std::size_t>(stage)];
    harness.scalar(prefix + "ca0_ca1_dc") =
        ca01.dc[static_cast<std::size_t>(stage)];
    harness.scalar(prefix + "ca2_ca3_cw") =
        ca23.cw[static_cast<std::size_t>(stage)];
    harness.scalar(prefix + "ca2_ca3_dc") =
        ca23.dc[static_cast<std::size_t>(stage)];
  }
  table.print(std::cout);

  std::cout << "\npaper Table 1 reference rows:\n"
               "  stage 0: BPC 0,  CA0/CA1 CW 8,  d 0 | CA2/CA3 CW 8,  d 0\n"
               "  stage 1: BPC 1,  CA0/CA1 CW 16, d 1 | CA2/CA3 CW 16, d 1\n"
               "  stage 2: BPC 2,  CA0/CA1 CW 32, d 3 | CA2/CA3 CW 16, d 3\n"
               "  stage 3: BPC>=3, CA0/CA1 CW 64, d 15| CA2/CA3 CW 32, d 15\n";
  return harness.finish();
}
