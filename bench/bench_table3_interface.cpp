// E5 / Table 3: the simulator's input interface, exercised with the
// paper's exact example invocation:
//   sim_1901(2, 5e8, 2920.64, 2542.64, 2050, [8 16 32 64], [0 1 3 15])
// (argument order per Table 3: N, sim_time, Tc, Ts, frame_length, cw, dc).
#include <iostream>

#include "bench_main.hpp"
#include "sim/sim_1901.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace plc;
  bench::Harness harness("table3_interface");

  std::cout << "=== Table 3: simulator input variables and the paper's "
               "default invocation ===\n\n";
  util::TablePrinter inputs({"notation", "definition", "value used"});
  inputs.add_row({"N", "number of saturated stations", "2"});
  inputs.add_row({"sim_time", "total simulation time in us", "5e8"});
  inputs.add_row({"Tc", "collision duration in us", "2920.64"});
  inputs.add_row({"Ts", "successful transmission duration in us",
                  "2542.64"});
  inputs.add_row({"frame_length", "frame duration in us", "2050"});
  inputs.add_row({"cw", "contention window per backoff stage",
                  "[8 16 32 64]"});
  inputs.add_row({"dc", "initial deferral counter per backoff stage",
                  "[0 1 3 15]"});
  inputs.print(std::cout);

  const sim::Sim1901Result result = sim::sim_1901(
      2, 5e8, 2920.64, 2542.64, 2050.0, {8, 16, 32, 64}, {0, 1, 3, 15});
  std::cout << "\nsim_1901(2, 5e8, 2920.64, 2542.64, 2050, [8 16 32 64], "
               "[0 1 3 15])\n";
  std::cout << "  collision_pr    = "
            << util::format_fixed(result.collision_probability, 4) << "\n";
  std::cout << "  norm_throughput = "
            << util::format_fixed(result.normalized_throughput, 4) << "\n";
  std::cout << "\n(outputs as the MATLAB reference returns them: "
               "[collision_pr, norm_thoughput])\n";

  harness.add_simulated_seconds(5e8 / 1e6);
  harness.scalar("collision_pr") = result.collision_probability;
  harness.scalar("norm_throughput") = result.normalized_throughput;
  return harness.finish();
}
