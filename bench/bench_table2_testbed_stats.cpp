// E3 / Table 2: sum(Ci) and sum(Ai) measured on the (emulated) HomePlug AV
// testbed for N = 1..7 saturated stations over a 240 s test — the paper's
// §3.2 procedure end to end: saturating UDP-like sources, ampstat reset at
// test start, ampstat query at test end, bursts of 2 MPDUs.
//
// The experiment is the registry's "table2" spec (scenarios/table2.json;
// `plcsim scenario table2`); this bench drives it and leaves
// BENCH_table2_testbed_stats.json behind, spec embedded.
#include <iostream>

#include "bench_main.hpp"
#include "scenario/registry.hpp"
#include "scenario/run.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace plc;
  bench::Harness harness("table2_testbed_stats");
  const scenario::Spec spec = scenario::Registry::get("table2");

  // The 7 independent 240 s tests are sharded across $PLC_JOBS workers;
  // seeds live in the configs, so the numbers match the serial loop for
  // any jobs count.
  const int jobs = util::jobs_from_env();
  scenario::RunOptions options;
  options.jobs = jobs;
  options.out = &std::cout;
  options.registry = &harness.registry();
  const auto cache = bench::open_store_from_env();  // $PLC_CACHE_DIR
  options.store = cache.get();
  const scenario::RunOutcome outcome = scenario::run_scenario(spec, options);

  harness.report().scalars = outcome.report.scalars;
  harness.report().events = outcome.report.events;
  harness.report().scenario = outcome.report.scenario;
  harness.add_simulated_seconds(outcome.report.simulated_seconds);
  bench::record_parallel(harness, jobs, outcome.wall_seconds,
                         outcome.serial_equivalent_seconds);
  if (cache) bench::record_cache(harness, *cache);

  std::cout << "\nShape checks (paper §3.2): sum(Ai) *increases* with N "
               "(collided MPDUs are acknowledged too,\nand more stations "
               "spend less total time in backoff); Ci/Ai grows concavely "
               "with N.\n";
  return harness.finish();
}
