// E3 / Table 2: sum(Ci) and sum(Ai) measured on the (emulated) HomePlug AV
// testbed for N = 1..7 saturated stations over a 240 s test — the paper's
// §3.2 procedure end to end: saturating UDP-like sources, ampstat reset at
// test start, ampstat query at test end, bursts of 2 MPDUs.
#include <iostream>
#include <vector>

#include "bench_main.hpp"
#include "tools/testbed.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace plc;
  bench::Harness harness("table2_testbed_stats");

  // Paper Table 2 (one 240 s test each).
  const double paper_c[] = {25,     12012, 21390, 28924,
                            35990,  41877, 46989};
  const double paper_a[] = {162220, 162020, 159780, 162590,
                            165390, 171440, 176080};

  std::cout << "=== Table 2: testbed statistics sum(Ci), sum(Ai), "
               "N = 1..7, 240 s ===\n";
  std::cout << "(emulated HomePlug AV devices measured through the "
               "0xA030 ampstat MME)\n\n";

  // The 7 tests are independent 240 s runs; shard them across $PLC_JOBS
  // workers. Seeds live in the configs and the suite result is indexed
  // like them, so the numbers match the serial loop for any jobs count.
  const int jobs = bench::jobs_from_env();
  std::vector<tools::TestbedConfig> configs;
  for (int n = 1; n <= 7; ++n) {
    tools::TestbedConfig config;
    config.stations = n;
    config.duration = des::SimTime::from_seconds(240.0);
    config.seed = 0x7AB2E + static_cast<std::uint64_t>(n);
    config.registry = &harness.registry();
    configs.push_back(config);
  }
  const tools::TestbedSuiteResult suite =
      tools::run_testbed_suite(configs, jobs);

  util::TablePrinter table({"N", "sum Ci", "sum Ai", "Ci/Ai", "paper Ci",
                            "paper Ai", "paper Ci/Ai"});
  for (int n = 1; n <= 7; ++n) {
    const tools::TestbedConfig& config =
        configs[static_cast<std::size_t>(n - 1)];
    const tools::TestbedResult& result =
        suite.runs[static_cast<std::size_t>(n - 1)];
    harness.add_simulated_seconds((config.warmup + config.duration).seconds());
    const std::string prefix = "n" + std::to_string(n) + ".";
    harness.scalar(prefix + "collided") =
        static_cast<double>(result.total_collided);
    harness.scalar(prefix + "acknowledged") =
        static_cast<double>(result.total_acknowledged);
    harness.scalar(prefix + "collision_probability") =
        result.collision_probability;
    table.add_row(
        {std::to_string(n),
         util::with_thousands(static_cast<std::int64_t>(result.total_collided)),
         util::with_thousands(
             static_cast<std::int64_t>(result.total_acknowledged)),
         util::format_fixed(result.collision_probability, 4),
         util::with_thousands(static_cast<std::int64_t>(paper_c[n - 1])),
         util::with_thousands(static_cast<std::int64_t>(paper_a[n - 1])),
         util::format_fixed(paper_c[n - 1] / paper_a[n - 1], 4)});
  }
  table.print(std::cout);
  bench::record_parallel(harness, jobs, suite.wall_seconds,
                         suite.serial_equivalent_seconds);

  std::cout << "\nShape checks (paper §3.2): sum(Ai) *increases* with N "
               "(collided MPDUs are acknowledged too,\nand more stations "
               "spend less total time in backoff); Ci/Ai grows concavely "
               "with N.\n";
  return harness.finish();
}
