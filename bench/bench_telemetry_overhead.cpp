// Telemetry-plane overhead budget: what does attaching an
// obs::TelemetryHub (and scraping it) cost a parallel sweep? The PR-2
// observability invariant extends to the live plane: disabled ~ 0%
// (a null-pointer branch per task epilogue), enabled < 5% (one
// mutex-guarded hub update per completed task plus the sampler).
//
// Like BM_ProfilerOverheadPaired, two separately-timed runs cannot
// prove a single-digit budget — frequency scaling between runs easily
// exceeds the effect — so every round interleaves three batches of the
// SAME sweep (bare / disabled / enabled) in rotating order and keeps
// the per-side minimum wall time. Interference only ever adds time, so
// min-vs-min is the estimator that survives a noisy machine.
//
//   baseline  production observability (registry bound, hub absent)
//   disabled  byte-for-byte the same configuration, separately
//             constructed: with the hub detached the telemetry plane
//             costs exactly one null-pointer branch per task epilogue,
//             so this side IS the disabled plane — the measured delta
//             vs baseline is the estimator's noise floor, which is the
//             strongest "disabled ~ 0%" statement a same-build bench
//             can make
//   enabled   hub attached and scraped once per batch via the same
//             renderer the HTTP endpoint serves
//   observatory  registry plus a per-rep obs::Observatory capturing
//             every station's backoff state at every slot epilogue —
//             the heaviest opt-in plane, same < 5% budget
//
// Scalars:
//   telemetry.disabled_overhead_pct     disabled vs baseline (~0 budget)
//   telemetry.enabled_overhead_pct      enabled vs baseline  (< 5 budget)
//   telemetry.observatory_overhead_pct  observatory vs baseline (< 8)
//   telemetry.tasks_per_second          enabled-side task throughput
#include <cstdio>
#include <string>
#include <vector>

#include "bench_main.hpp"
#include "obs/metrics.hpp"
#include "obs/observatory.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "sim/parallel_runner.hpp"
#include "sim/runner.hpp"

namespace {

using namespace plc;

/// One batch = one full parallel sweep. Task sizes follow the real
/// sweeps (milliseconds, not microseconds): the hub epilogue is a fixed
/// per-task price, so the budget is only meaningful at production task
/// granularity.
std::vector<sim::RunSpec> make_sweep() {
  std::vector<sim::RunSpec> specs;
  for (const int stations : {2, 5, 10, 15}) {
    sim::RunSpec spec;
    spec.stations = stations;
    spec.duration = des::SimTime::from_seconds(20.0);
    spec.repetitions = 6;
    spec.seed = 0x1901;
    // Pin the slot kernel: the observatory side forces the slot path
    // (per-slot hooks), so letting the other sides auto-select the event
    // kernel would turn this into a kernel race instead of a telemetry
    // overhead measurement. BM_KernelRacePaired owns that comparison.
    spec.kernel = sim::Kernel::kSlot;
    specs.push_back(spec);
  }
  return specs;
}

std::int64_t total_tasks(const std::vector<sim::RunSpec>& specs) {
  std::int64_t tasks = 0;
  for (const sim::RunSpec& spec : specs) tasks += spec.repetitions;
  return tasks;
}

}  // namespace

int main() {
  bench::Harness harness("telemetry_overhead");

  // A shared CI box shows a ±5% single-sample noise floor, so the min
  // estimator needs a deep sample pool before the gate is meaningful.
  const std::vector<sim::RunSpec> specs = make_sweep();
  const std::int64_t tasks = total_tasks(specs);
  sim::ParallelRunner runner;

  obs::Stopwatch wall;
  bool batch_had_stations = false;
  const auto timed_batch = [&](const sim::RunObservability& obs) {
    obs::Stopwatch batch;
    const std::vector<sim::RunSummary> summaries =
        runner.run_points(specs, obs);
    harness.add_simulated_seconds(summaries.front().simulated.seconds());
    batch_had_stations = summaries.front().stations.has_value();
    return batch.elapsed_seconds();
  };
  const auto keep_min = [](double& slot, double sample) {
    if (slot == 0.0 || sample < slot) slot = sample;
  };

  double baseline_min = 0.0;
  double disabled_min = 0.0;
  double enabled_min = 0.0;
  double observatory_min = 0.0;
  constexpr int kRounds = 20;  // 2 warmup + 18 measured per side.
  for (int round = 0; round < kRounds; ++round) {
    // Rotate the order so a frequency ramp inside a round cannot
    // systematically favor one side.
    for (int step = 0; step < 4; ++step) {
      const int side = (round + step) % 4;
      if (side == 2) {
        obs::Registry registry;
        obs::TelemetryHub hub;
        sim::RunObservability obs;
        obs.registry = &registry;
        obs.telemetry = &hub;
        const double seconds = timed_batch(obs);
        // One scrape per batch: the render path the HTTP endpoint pays.
        const std::string exposition = hub.openmetrics();
        if (exposition.empty()) return 1;  // Renderer always emits # EOF.
        if (round >= 2) keep_min(enabled_min, seconds);
      } else if (side == 3) {
        obs::Registry registry;
        obs::ObservatoryOptions options;
        sim::RunObservability obs;
        obs.registry = &registry;
        obs.observatory = &options;
        const double seconds = timed_batch(obs);
        if (!batch_had_stations) return 1;  // Capture must have run.
        if (round >= 2) keep_min(observatory_min, seconds);
      } else {
        obs::Registry registry;
        sim::RunObservability obs;
        obs.registry = &registry;
        const double seconds = timed_batch(obs);
        if (round >= 2) {
          keep_min(side == 0 ? baseline_min : disabled_min, seconds);
        }
      }
    }
  }

  const double disabled_pct =
      baseline_min > 0.0
          ? 100.0 * (disabled_min - baseline_min) / baseline_min
          : 0.0;
  const double enabled_pct =
      baseline_min > 0.0
          ? 100.0 * (enabled_min - baseline_min) / baseline_min
          : 0.0;
  const double observatory_pct =
      baseline_min > 0.0
          ? 100.0 * (observatory_min - baseline_min) / baseline_min
          : 0.0;
  harness.scalar("telemetry.disabled_overhead_pct") = disabled_pct;
  harness.scalar("telemetry.enabled_overhead_pct") = enabled_pct;
  harness.scalar("telemetry.observatory_overhead_pct") = observatory_pct;
  harness.scalar("telemetry.tasks_per_second") =
      enabled_min > 0.0 ? static_cast<double>(tasks) / enabled_min : 0.0;

  std::printf("telemetry overhead (min batch over %d measured rounds, "
              "%lld tasks/batch, %d workers)\n",
              kRounds - 2, static_cast<long long>(tasks), runner.jobs());
  std::printf("  baseline     %8.2f ms\n", baseline_min * 1e3);
  std::printf("  disabled     %8.2f ms  (%+.2f%% vs baseline)\n",
              disabled_min * 1e3, disabled_pct);
  std::printf("  enabled      %8.2f ms  (%+.2f%% vs baseline)\n",
              enabled_min * 1e3, enabled_pct);
  std::printf("  observatory  %8.2f ms  (%+.2f%% vs baseline)\n",
              observatory_min * 1e3, observatory_pct);
  return harness.finish();
}
