// E8 (extended): "boosting" — tuning the CW/DC configuration beyond the
// Table 1 defaults. The analytical model ranks a candidate pool per N;
// the best candidates are validated by simulation next to the default.
// This is the configuration-tuning theme of the paper's title: the
// default is tuned for smooth behaviour across unknown N, so for a
// *known* N there is throughput on the table.
#include <iostream>

#include "analysis/optimizer.hpp"
#include "bench_main.hpp"
#include "sim/sim_1901.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

double simulate(const plc::mac::BackoffConfig& config, int n,
                std::uint64_t seed) {
  return plc::sim::sim_1901(n, 6e7, 2920.64, 2542.64, 2050.0, config.cw,
                            config.dc, seed)
      .normalized_throughput;
}

}  // namespace

int main() {
  using namespace plc;
  bench::Harness harness("ext_boosting_configs");
  const sim::SlotTiming timing;
  const des::SimTime frame = des::SimTime::from_us(2050.0);
  const auto pool = analysis::default_candidate_pool();

  std::cout << "=== E8: boosting — tuned configurations vs the Table 1 "
               "default ===\n\n";

  for (const int n : {5, 15, 30}) {
    const auto ranked =
        analysis::rank_configurations(n, timing, frame, pool);
    const analysis::CandidateScore uniform =
        analysis::best_uniform_window(n, timing, frame);

    std::cout << "--- N = " << n << " saturated stations ---\n";
    util::TablePrinter table({"configuration", "model thr", "model coll",
                              "sim thr"});
    // Default first, then the top three candidates, then the tuned
    // uniform window.
    for (const auto& score : ranked) {
      if (score.config.name == "CA0/CA1") {
        table.add_row({"default " + score.config.name,
                       util::format_fixed(score.throughput, 4),
                       util::format_fixed(score.collision_probability, 4),
                       util::format_fixed(
                           simulate(score.config, n, 0xB0057), 4)});
      }
    }
    for (std::size_t i = 0; i < 3 && i < ranked.size(); ++i) {
      table.add_row({ranked[i].config.name,
                     util::format_fixed(ranked[i].throughput, 4),
                     util::format_fixed(ranked[i].collision_probability, 4),
                     util::format_fixed(
                         simulate(ranked[i].config, n, 0xB0058), 4)});
    }
    table.add_row({"tuned " + uniform.config.name,
                   util::format_fixed(uniform.throughput, 4),
                   util::format_fixed(uniform.collision_probability, 4),
                   util::format_fixed(simulate(uniform.config, n, 0xB0059),
                                      4)});
    table.print(std::cout);
    std::cout << "\n";

    const std::string prefix = "n" + std::to_string(n) + ".";
    if (!ranked.empty()) {
      harness.scalar(prefix + "best_model_throughput") =
          ranked.front().throughput;
    }
    harness.scalar(prefix + "tuned_uniform_throughput") = uniform.throughput;
    // 5 simulated validations of 60 s each per N.
    harness.add_simulated_seconds(5 * 60.0);
  }

  std::cout << "Shape checks: the tuned uniform window grows with N and "
               "beats the default at every N here; the model's ranking "
               "is confirmed by simulation (columns agree within ~0.01-"
               "0.03, the decoupling error).\n";
  return harness.finish();
}
