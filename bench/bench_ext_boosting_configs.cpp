// E8 (extended): "boosting" — tuning the CW/DC configuration beyond the
// Table 1 defaults. The analytical model ranks a candidate pool per N;
// the best candidates are validated by simulation next to the default.
// This is the configuration-tuning theme of the paper's title: the
// default is tuned for smooth behaviour across unknown N, so for a
// *known* N there is throughput on the table.
#include <cstddef>
#include <iostream>
#include <vector>

#include "analysis/optimizer.hpp"
#include "bench_main.hpp"
#include "obs/report.hpp"
#include "scenario/registry.hpp"
#include "sim/sim_1901.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

/// One simulated validation (60 sim-s), gathered up front so the heavy
/// sim_1901 calls can be sharded across the worker pool. Seeds are part
/// of the job, so the values match the serial loop for any jobs count.
struct SimJob {
  plc::mac::BackoffConfig config;
  int n = 0;
  std::uint64_t seed = 0;
  double throughput = 0.0;    ///< Filled by the pool.
  double wall_seconds = 0.0;  ///< Per-job wall time (serial-equivalent).
};

void simulate_all(std::vector<SimJob>& sim_jobs, int jobs,
                  const plc::scenario::Spec& spec) {
  const double duration_us = spec.duration.us();
  const double tc_us = spec.timing.tc(spec.frame_length).us();
  const double ts_us = spec.timing.ts(spec.frame_length).us();
  const double frame_us = spec.frame_length.us();
  plc::util::ThreadPool pool(jobs);
  pool.parallel_for(
      static_cast<std::int64_t>(sim_jobs.size()), [&](std::int64_t i) {
        SimJob& job = sim_jobs[static_cast<std::size_t>(i)];
        plc::obs::Stopwatch job_wall;
        job.throughput =
            plc::sim::sim_1901(job.n, duration_us, tc_us, ts_us, frame_us,
                               job.config.cw, job.config.dc, job.seed)
                .normalized_throughput;
        job.wall_seconds = job_wall.elapsed_seconds();
      });
}

}  // namespace

int main() {
  using namespace plc;
  bench::Harness harness("ext_boosting_configs");
  // Sweep frame (station counts, sim duration, timing, root seed) from
  // the declarative spec; the candidate pool and ranking stay here.
  const scenario::Spec spec = scenario::Registry::get("e8-boosting");
  harness.report().scenario = spec.to_json();
  const phy::TimingConfig timing = spec.timing;
  const des::SimTime frame = spec.frame_length;
  const auto pool = analysis::default_candidate_pool();
  const std::vector<int>& station_counts = spec.stations;

  std::cout << "=== E8: boosting — tuned configurations vs the Table 1 "
               "default ===\n\n";

  // Rank first (cheap, analytical), then shard the 5 x 3 simulated
  // validations across $PLC_JOBS workers.
  std::vector<std::vector<analysis::CandidateScore>> ranked_by_n;
  std::vector<analysis::CandidateScore> uniform_by_n;
  std::vector<SimJob> sim_jobs;  // 5 per N, in table order.
  for (const int n : station_counts) {
    ranked_by_n.push_back(
        analysis::rank_configurations(n, timing, frame, pool));
    uniform_by_n.push_back(analysis::best_uniform_window(n, timing, frame));
    const auto& ranked = ranked_by_n.back();
    for (const auto& score : ranked) {
      if (score.config.name == "CA0/CA1") {
        sim_jobs.push_back({score.config, n, spec.seed, 0.0});
      }
    }
    for (std::size_t i = 0; i < 3 && i < ranked.size(); ++i) {
      sim_jobs.push_back({ranked[i].config, n, spec.seed + 1, 0.0});
    }
    sim_jobs.push_back({uniform_by_n.back().config, n, spec.seed + 2, 0.0});
  }
  const int jobs = util::jobs_from_env();
  obs::Stopwatch parallel_wall;
  simulate_all(sim_jobs, jobs, spec);
  const double parallel_seconds = parallel_wall.elapsed_seconds();

  std::size_t next_job = 0;
  for (std::size_t row = 0; row < station_counts.size(); ++row) {
    const int n = station_counts[row];
    const auto& ranked = ranked_by_n[row];
    const analysis::CandidateScore& uniform = uniform_by_n[row];

    std::cout << "--- N = " << n << " saturated stations ---\n";
    util::TablePrinter table({"configuration", "model thr", "model coll",
                              "sim thr"});
    // Default first, then the top three candidates, then the tuned
    // uniform window.
    for (const auto& score : ranked) {
      if (score.config.name == "CA0/CA1") {
        table.add_row({"default " + score.config.name,
                       util::format_fixed(score.throughput, 4),
                       util::format_fixed(score.collision_probability, 4),
                       util::format_fixed(sim_jobs[next_job++].throughput,
                                          4)});
      }
    }
    for (std::size_t i = 0; i < 3 && i < ranked.size(); ++i) {
      table.add_row({ranked[i].config.name,
                     util::format_fixed(ranked[i].throughput, 4),
                     util::format_fixed(ranked[i].collision_probability, 4),
                     util::format_fixed(sim_jobs[next_job++].throughput, 4)});
    }
    table.add_row({"tuned " + uniform.config.name,
                   util::format_fixed(uniform.throughput, 4),
                   util::format_fixed(uniform.collision_probability, 4),
                   util::format_fixed(sim_jobs[next_job++].throughput, 4)});
    table.print(std::cout);
    std::cout << "\n";

    const std::string prefix = "n" + std::to_string(n) + ".";
    if (!ranked.empty()) {
      harness.scalar(prefix + "best_model_throughput") =
          ranked.front().throughput;
    }
    harness.scalar(prefix + "tuned_uniform_throughput") = uniform.throughput;
    // 5 simulated validations of spec.duration each per N.
    harness.add_simulated_seconds(5 * spec.duration.seconds());
  }
  double serial_equivalent = 0.0;
  for (const SimJob& job : sim_jobs) serial_equivalent += job.wall_seconds;
  bench::record_parallel(harness, jobs, parallel_seconds, serial_equivalent);

  std::cout << "Shape checks: the tuned uniform window grows with N and "
               "beats the default at every N here; the model's ranking "
               "is confirmed by simulation (columns agree within ~0.01-"
               "0.03, the decoupling error).\n";
  return harness.finish();
}
