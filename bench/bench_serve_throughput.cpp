// plcsim serve under load: an in-process load generator drives the
// daemon over real loopback sockets, closed-loop — submit a spec via
// POST /v1/jobs, poll GET /v1/jobs/<id> until done, fetch the report —
// and measures per-spec latency cold (empty store, every task
// simulated) and warm (identical specs resubmitted, every task a store
// hit). The headline scalars are the warm/cold p50 ratio (what the
// store buys an API client; gated >= 10x in scripts/bench_gate.sh) and
// warm specs/sec (the absolute service-rate budget).
//
// The warm round must be a 100% hit: any miss means the canonical-spec
// hash drifted between two identical submissions, which is a
// correctness bug, so the bench fails loudly instead of recording a
// diluted ratio.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_main.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "serve/server.hpp"
#include "util/socket.hpp"
#include "util/thread_pool.hpp"

#ifdef _WIN32
#include <process.h>
#define PLC_GETPID _getpid
#else
#include <unistd.h>
#define PLC_GETPID getpid
#endif

namespace {

using namespace plc;

/// One distinct spec per index: same shape, different seed, so the
/// rounds exercise distinct cache keys like a real submission mix.
/// Sim leg only — the model leg is analytic (never cached), so it would
/// put a constant floor under both rounds and dilute the warm ratio.
std::string spec_json(int index) {
  return "{\"schema\":\"plc-scenario/1\",\"name\":\"serve-load-" +
         std::to_string(index) +
         "\",\"macs\":[{\"label\":\"CA1\",\"type\":\"1901\","
         "\"preset\":\"ca0_ca1\"}],\"stations\":[2,3],"
         "\"duration_ns\":400000000000,\"repetitions\":2,"
         "\"seed\":\"0x" +
         std::to_string(7000 + index) +
         "\",\"legs\":{\"sim\":true,\"model\":false}}";
}

/// One request/connection round trip against the daemon.
std::string roundtrip(int port, const std::string& request) {
  util::Socket client = util::Socket::connect_tcp("127.0.0.1", port);
  client.send_all(request);
  return client.recv_all();
}

std::string body_of(const std::string& response) {
  return response.substr(response.find("\r\n\r\n") + 4);
}

bool has_status(const std::string& response, const char* code) {
  return response.compare(9, 3, code) == 0;  // "HTTP/1.1 ###".
}

/// Closed-loop: submit one spec, poll until done, fetch the report.
/// Returns the submit -> report-in-hand latency in seconds.
double run_one(int port, const std::string& spec) {
  obs::Stopwatch clock;
  const std::string submit = roundtrip(
      port, "POST /v1/jobs HTTP/1.1\r\nContent-Length: " +
                std::to_string(spec.size()) + "\r\n\r\n" + spec);
  if (!has_status(submit, "202")) {
    std::fprintf(stderr, "bench_serve_throughput: submit failed:\n%s\n",
                 submit.c_str());
    std::exit(1);
  }
  const obs::JsonValue job = obs::parse_json(body_of(submit));
  const std::string id = job.find("id")->text;
  while (true) {
    const std::string report = roundtrip(
        port, "GET /v1/jobs/" + id + "/report HTTP/1.1\r\n\r\n");
    if (has_status(report, "200")) return clock.elapsed_seconds();
    if (!has_status(report, "409")) {
      std::fprintf(stderr,
                   "bench_serve_throughput: job %s failed:\n%s\n",
                   id.c_str(), report.c_str());
      std::exit(1);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

double percentile(std::vector<double> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

int main() {
  bench::Harness harness("serve_throughput");
  constexpr int kSpecs = 8;

  const std::filesystem::path root =
      std::filesystem::temp_directory_path() /
      ("plc-bench-serve-" + std::to_string(PLC_GETPID()));
  std::filesystem::remove_all(root);

  serve::Server::Options options;
  options.jobs = util::jobs_from_env();
  options.cache_dir = root.string();
  serve::Server server(options);
  server.start();
  const int port = server.port();

  // Cold round: every task simulated and published.
  std::vector<double> cold;
  obs::Stopwatch cold_clock;
  for (int i = 0; i < kSpecs; ++i) cold.push_back(run_one(port, spec_json(i)));
  const double cold_seconds = cold_clock.elapsed_seconds();

  // Warm round: the identical mix again — 100% store hits, no sim work.
  const store::Counters before = server.store()->counters();
  std::vector<double> warm;
  obs::Stopwatch warm_clock;
  for (int i = 0; i < kSpecs; ++i) warm.push_back(run_one(port, spec_json(i)));
  const double warm_seconds = warm_clock.elapsed_seconds();
  const store::Counters after = server.store()->counters();

  server.stop();
  std::filesystem::remove_all(root);

  if (after.misses != before.misses || after.hits == before.hits) {
    std::fprintf(stderr,
                 "bench_serve_throughput: warm round was not a full hit "
                 "(%lld new hits, %lld new misses) — spec-hash or store-key "
                 "instability\n",
                 static_cast<long long>(after.hits - before.hits),
                 static_cast<long long>(after.misses - before.misses));
    return 1;
  }

  const double cold_p50 = percentile(cold, 0.50);
  const double cold_p99 = percentile(cold, 0.99);
  const double warm_p50 = percentile(warm, 0.50);
  const double warm_p99 = percentile(warm, 0.99);
  harness.scalar("serve.cold_p50_ms") = cold_p50 * 1e3;
  harness.scalar("serve.cold_p99_ms") = cold_p99 * 1e3;
  harness.scalar("serve.warm_p50_ms") = warm_p50 * 1e3;
  harness.scalar("serve.warm_p99_ms") = warm_p99 * 1e3;
  harness.scalar("serve.warm_over_cold_p50") =
      warm_p50 > 0.0 ? cold_p50 / warm_p50 : 0.0;
  // The one relatively-gated scalar ("throughput" substring puts it on
  // benchdiff's default gate list): how many already-computed specs the
  // daemon serves per second, end to end over sockets.
  harness.scalar("serve.warm_throughput_specs_per_second") =
      warm_seconds > 0.0 ? static_cast<double>(kSpecs) / warm_seconds : 0.0;
  harness.scalar("serve.jobs") =
      static_cast<double>(util::ThreadPool::resolve_jobs(options.jobs));

  std::cout << "serve load (" << kSpecs << " specs, jobs="
            << util::ThreadPool::resolve_jobs(options.jobs) << "):\n"
            << "  cold  p50 " << util::format_fixed(cold_p50 * 1e3, 1)
            << " ms  p99 " << util::format_fixed(cold_p99 * 1e3, 1)
            << " ms  (" << util::format_fixed(cold_seconds, 2)
            << " s total)\n"
            << "  warm  p50 " << util::format_fixed(warm_p50 * 1e3, 1)
            << " ms  p99 " << util::format_fixed(warm_p99 * 1e3, 1)
            << " ms  ("
            << util::format_fixed(
                   static_cast<double>(kSpecs) / warm_seconds, 1)
            << " specs/s, "
            << util::format_fixed(cold_p50 / warm_p50, 1)
            << "x faster at p50)\n";
  return harness.finish();
}
