// Kernel micro-benchmarks (google-benchmark): how fast the framework's
// engines run. Useful for sizing long parameter sweeps — the slot
// simulator processes millions of medium events per second, the full
// event-driven testbed runs hundreds of simulated seconds per wall
// second, and the analytical solvers are microseconds per point.
#include <benchmark/benchmark.h>

#include "analysis/exact_chain.hpp"
#include "analysis/model_1901.hpp"
#include "des/scheduler.hpp"
#include "mac/config.hpp"
#include "mme/ampstat.hpp"
#include "sim/slot_simulator.hpp"
#include "tools/testbed.hpp"

namespace {

using namespace plc;

void BM_SlotSimulatorEvents(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::SlotSimulator simulator(
      sim::make_1901_entities(n, mac::BackoffConfig::ca0_ca1(), 42),
      sim::SlotTiming{});
  for (auto _ : state) {
    simulator.run_events(10'000);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SlotSimulatorEvents)->Arg(2)->Arg(10)->Arg(50);

void BM_SchedulerChurn(benchmark::State& state) {
  for (auto _ : state) {
    des::Scheduler scheduler;
    for (int i = 0; i < 1'000; ++i) {
      scheduler.schedule(des::SimTime::from_ns(i * 100), [] {});
    }
    scheduler.run_until(des::SimTime::from_us(1'000.0));
    benchmark::DoNotOptimize(scheduler.events_dispatched());
  }
  state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_SchedulerChurn);

void BM_Model1901Solve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::solve_1901(n, mac::BackoffConfig::ca0_ca1()).gamma);
  }
}
BENCHMARK(BM_Model1901Solve)->Arg(2)->Arg(10)->Arg(50);

void BM_ExactPairSolveTiny(benchmark::State& state) {
  mac::BackoffConfig tiny;
  tiny.cw = {4, 8};
  tiny.dc = {0, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::solve_exact_pair(tiny).collision_probability);
  }
}
BENCHMARK(BM_ExactPairSolveTiny);

void BM_AmpStatCodecRoundTrip(benchmark::State& state) {
  mme::AmpStatConfirm confirm;
  confirm.acknowledged = 162'220;
  confirm.collided = 12'012;
  const frames::MacAddress device = frames::MacAddress::for_station(1);
  const frames::MacAddress host =
      frames::MacAddress::parse("02:19:01:ff:ff:01");
  for (auto _ : state) {
    const frames::EthernetFrame frame =
        confirm.to_mme(device, host).to_ethernet();
    const auto parsed =
        mme::AmpStatConfirm::from_mme(mme::Mme::from_ethernet(frame));
    benchmark::DoNotOptimize(parsed->acknowledged);
  }
}
BENCHMARK(BM_AmpStatCodecRoundTrip);

void BM_EmulatedTestbedSecond(benchmark::State& state) {
  // Wall cost of one simulated second of a 3-station emulated testbed.
  for (auto _ : state) {
    tools::TestbedConfig config;
    config.stations = 3;
    config.warmup = des::SimTime::from_seconds(0.1);
    config.duration = des::SimTime::from_seconds(1.0);
    benchmark::DoNotOptimize(
        tools::run_saturated_testbed(config).total_acknowledged);
  }
}
BENCHMARK(BM_EmulatedTestbedSecond);

}  // namespace
