// Kernel micro-benchmarks (google-benchmark): how fast the framework's
// engines run. Useful for sizing long parameter sweeps — the slot
// simulator processes millions of medium events per second, the full
// event-driven testbed runs hundreds of simulated seconds per wall
// second, and the analytical solvers are microseconds per point.
//
// Besides the console table, the binary writes every per-iteration result
// into BENCH_kernel_microbench.json (schema plc-run-report/1) so repeated
// runs accumulate a perf trajectory; the BM_SlotSimulatorEvents* family
// measures the observability overhead (no instrumentation vs null
// observer vs bound metrics vs tracing) on the hottest loop, and
// BM_ProfilerOverheadPaired turns the phase-profiler cost into the
// derived profiler.*_overhead_pct scalars — the overhead-budget proof:
// disabled ~0%, enabled < 5%.
#include <chrono>
#include <cstdint>

#include <benchmark/benchmark.h>

#include "analysis/exact_chain.hpp"
#include "analysis/model_1901.hpp"
#include "bench_main.hpp"
#include "des/scheduler.hpp"
#include "mac/config.hpp"
#include "mme/ampstat.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "sim/event_kernel.hpp"
#include "sim/runner.hpp"
#include "sim/slot_simulator.hpp"
#include "tools/testbed.hpp"

namespace {

using namespace plc;

constexpr std::int64_t kEventsPerIteration = 10'000;

sim::SlotSimulator make_bench_simulator(int n) {
  return sim::SlotSimulator(
      sim::make_1901_entities(n, mac::BackoffConfig::ca0_ca1(), 42));
}

void run_slot_sim_loop(benchmark::State& state,
                       sim::SlotSimulator& simulator) {
  for (auto _ : state) {
    simulator.run_events(kEventsPerIteration);
  }
  state.SetItemsProcessed(state.iterations() * kEventsPerIteration);
}

void BM_SlotSimulatorEvents(benchmark::State& state) {
  sim::SlotSimulator simulator =
      make_bench_simulator(static_cast<int>(state.range(0)));
  run_slot_sim_loop(state, simulator);
}
BENCHMARK(BM_SlotSimulatorEvents)->Arg(2)->Arg(10)->Arg(50);

// Observer overhead: a bound std::function that does nothing — the cost
// of the indirect call per medium event (the pre-obs observer path).
void BM_SlotSimulatorEventsNullObserver(benchmark::State& state) {
  sim::SlotSimulator simulator =
      make_bench_simulator(static_cast<int>(state.range(0)));
  simulator.set_observer([](const sim::SlotEvent&) {});
  run_slot_sim_loop(state, simulator);
}
BENCHMARK(BM_SlotSimulatorEventsNullObserver)->Arg(10);

// Metrics overhead: registry bound, so every event does the pre-resolved
// counter adds. The acceptance budget is <= 10% vs BM_SlotSimulatorEvents.
void BM_SlotSimulatorEventsMetrics(benchmark::State& state) {
  obs::Registry registry;
  sim::SlotSimulator simulator =
      make_bench_simulator(static_cast<int>(state.range(0)));
  simulator.bind_metrics(registry);
  run_slot_sim_loop(state, simulator);
}
BENCHMARK(BM_SlotSimulatorEventsMetrics)->Arg(10);

// Tracing overhead: every event records a span into the bounded ring.
void BM_SlotSimulatorEventsTraced(benchmark::State& state) {
  obs::TraceSink trace;
  sim::SlotSimulator simulator =
      make_bench_simulator(static_cast<int>(state.range(0)));
  simulator.set_trace(&trace);
  run_slot_sim_loop(state, simulator);
}
BENCHMARK(BM_SlotSimulatorEventsTraced)->Arg(10);

// Phase-profiler overhead on the hottest loop. The PROF_SCOPE sits at
// run_events granularity (one scope per kEventsPerIteration medium
// events), so "disabled" pays a relaxed atomic load per scope and
// "enabled" pays two steady_clock reads plus a child lookup per scope.
// Two separately-timed benchmarks cannot prove either budget: frequency
// scaling between runs easily exceeds the effect (±25% observed), so this
// benchmark interleaves a disabled and an enabled batch inside ONE run
// and accumulates each side on its own timer — every noise source hits
// both alternatives alike. main() derives the
// profiler.enabled_overhead_pct scalar from the two accumulators, and
// profiler.disabled_overhead_pct by amortizing the measured per-scope
// disabled price (BM_ProfilerScopeDisabled) over one batch.
std::int64_t g_paired_disabled_min_ns = 0;
std::int64_t g_paired_enabled_min_ns = 0;

void BM_ProfilerOverheadPaired(benchmark::State& state) {
  sim::SlotSimulator disabled_sim = make_bench_simulator(10);
  sim::SlotSimulator enabled_sim = make_bench_simulator(10);
  std::int64_t disabled_min_ns = 0;
  std::int64_t enabled_min_ns = 0;
  std::int64_t batches = 0;
  using clock = std::chrono::steady_clock;
  const auto timed_batch = [](sim::SlotSimulator& simulator,
                              bool enabled) {
    obs::Profiler::set_enabled(enabled);
    const auto start = clock::now();
    simulator.run_events(kEventsPerIteration);
    const auto stop = clock::now();
    obs::Profiler::set_enabled(false);
    return std::chrono::duration_cast<std::chrono::nanoseconds>(stop -
                                                                start)
        .count();
  };
  const auto keep_min = [](std::int64_t& slot, std::int64_t sample) {
    if (slot == 0 || sample < slot) slot = sample;
  };
  for (auto _ : state) {
    // Swap which side goes first each batch: a frequency ramp inside the
    // pair would otherwise systematically favor the second slot. Keep the
    // per-side MINIMUM batch time — interference (preemption, frequency
    // dips) only ever adds time, so comparing best case against best case
    // is the estimator that survives a noisy machine.
    if (batches % 2 == 0) {
      keep_min(disabled_min_ns, timed_batch(disabled_sim, false));
      keep_min(enabled_min_ns, timed_batch(enabled_sim, true));
    } else {
      keep_min(enabled_min_ns, timed_batch(enabled_sim, true));
      keep_min(disabled_min_ns, timed_batch(disabled_sim, false));
    }
    ++batches;
  }
  state.SetItemsProcessed(state.iterations() * 2 * kEventsPerIteration);
  // The final timed run overwrites the warmup runs' results.
  g_paired_disabled_min_ns = disabled_min_ns;
  g_paired_enabled_min_ns = enabled_min_ns;
}
BENCHMARK(BM_ProfilerOverheadPaired);

// Raw cost of one enabled PROF_SCOPE (enter + exit, two clock reads and
// the parent-frame bookkeeping) — the unit price of adding a phase.
void BM_ProfilerScopeEnabled(benchmark::State& state) {
  obs::Profiler::set_enabled(true);
  for (auto _ : state) {
    PROF_SCOPE("bench.scope");
    benchmark::DoNotOptimize(state.iterations());
  }
  obs::Profiler::set_enabled(false);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerScopeEnabled);

// And the disabled price: a relaxed atomic load and a branch.
void BM_ProfilerScopeDisabled(benchmark::State& state) {
  obs::Profiler::set_enabled(false);
  for (auto _ : state) {
    PROF_SCOPE("bench.scope");
    benchmark::DoNotOptimize(state.iterations());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerScopeDisabled);

// --- Slot vs event kernel race -----------------------------------------
//
// Both kernels simulate identical physics, so "how many slot-equivalents
// of simulated time per wall second" is the honest throughput unit: the
// batch covers a fixed simulated duration, and slots_per_sec =
// (duration / slot_length) / wall_seconds. The workload is the paper's
// boosting regime — large CWs at N=10, where the medium idles for tens
// of slots between attempts. That is exactly where sweeps spend their
// time (long CW tails dominate run cost) and where the event kernel's
// gap batching pays: the slot path touches every idle slot, the event
// kernel jumps the whole gap in one O(N) step. The measurement reuses
// the paired-minimum idiom from BM_ProfilerOverheadPaired so frequency
// scaling hits both kernels alike; main() derives slot.slots_per_sec,
// event.slots_per_sec and event.speedup_vs_slot, which
// scripts/bench_gate.sh holds to an absolute >= 10x budget.
sim::RunSpec kernel_race_spec() {
  mac::BackoffConfig boosted;
  boosted.name = "boosted-large-cw";
  boosted.cw = {256, 512, 1024, 2048};
  boosted.dc = {0, 1, 3, 15};
  sim::RunSpec spec;
  spec.mac = boosted;
  spec.stations = 10;
  return spec;
}

const des::SimTime kKernelRaceBatch = des::SimTime::from_seconds(2.0);
std::int64_t g_kernel_race_slot_min_ns = 0;
std::int64_t g_kernel_race_event_min_ns = 0;

void BM_KernelRacePaired(benchmark::State& state) {
  const sim::RunSpec spec = kernel_race_spec();
  sim::SlotSimulator slot_kernel = sim::make_simulator(spec, 0);
  sim::EventKernel event_kernel = sim::make_event_kernel(spec, 0);
  std::int64_t slot_min_ns = 0;
  std::int64_t event_min_ns = 0;
  std::int64_t batches = 0;
  using clock = std::chrono::steady_clock;
  const auto timed_batch = [](auto& kernel) {
    const auto start = clock::now();
    kernel.run(kKernelRaceBatch);
    const auto stop = clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(stop -
                                                                start)
        .count();
  };
  const auto keep_min = [](std::int64_t& slot, std::int64_t sample) {
    if (slot == 0 || sample < slot) slot = sample;
  };
  for (auto _ : state) {
    if (batches % 2 == 0) {
      keep_min(slot_min_ns, timed_batch(slot_kernel));
      keep_min(event_min_ns, timed_batch(event_kernel));
    } else {
      keep_min(event_min_ns, timed_batch(event_kernel));
      keep_min(slot_min_ns, timed_batch(slot_kernel));
    }
    ++batches;
  }
  const double batch_slots =
      static_cast<double>(kKernelRaceBatch.ns()) /
      static_cast<double>(spec.timing.slot.ns());
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * 2 * batch_slots));
  g_kernel_race_slot_min_ns = slot_min_ns;
  g_kernel_race_event_min_ns = event_min_ns;
}
BENCHMARK(BM_KernelRacePaired);

void BM_SchedulerChurn(benchmark::State& state) {
  for (auto _ : state) {
    des::Scheduler scheduler;
    for (int i = 0; i < 1'000; ++i) {
      scheduler.schedule(des::SimTime::from_ns(i * 100), [] {});
    }
    scheduler.run_until(des::SimTime::from_us(1'000.0));
    benchmark::DoNotOptimize(scheduler.events_dispatched());
  }
  state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_SchedulerChurn);

void BM_Model1901Solve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::solve_1901(n, mac::BackoffConfig::ca0_ca1()).gamma);
  }
}
BENCHMARK(BM_Model1901Solve)->Arg(2)->Arg(10)->Arg(50);

void BM_ExactPairSolveTiny(benchmark::State& state) {
  mac::BackoffConfig tiny;
  tiny.cw = {4, 8};
  tiny.dc = {0, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::solve_exact_pair(tiny).collision_probability);
  }
}
BENCHMARK(BM_ExactPairSolveTiny);

void BM_AmpStatCodecRoundTrip(benchmark::State& state) {
  mme::AmpStatConfirm confirm;
  confirm.acknowledged = 162'220;
  confirm.collided = 12'012;
  const frames::MacAddress device = frames::MacAddress::for_station(1);
  const frames::MacAddress host =
      frames::MacAddress::parse("02:19:01:ff:ff:01");
  for (auto _ : state) {
    const frames::EthernetFrame frame =
        confirm.to_mme(device, host).to_ethernet();
    const auto parsed =
        mme::AmpStatConfirm::from_mme(mme::Mme::from_ethernet(frame));
    benchmark::DoNotOptimize(parsed->acknowledged);
  }
}
BENCHMARK(BM_AmpStatCodecRoundTrip);

void BM_EmulatedTestbedSecond(benchmark::State& state) {
  // Wall cost of one simulated second of a 3-station emulated testbed.
  for (auto _ : state) {
    tools::TestbedConfig config;
    config.stations = 3;
    config.warmup = des::SimTime::from_seconds(0.1);
    config.duration = des::SimTime::from_seconds(1.0);
    benchmark::DoNotOptimize(
        tools::run_saturated_testbed(config).total_acknowledged);
  }
}
BENCHMARK(BM_EmulatedTestbedSecond);

/// Prints the usual console table AND collects every per-iteration run
/// into a RunReport, so the binary leaves a machine-readable perf record
/// behind (BENCH_kernel_microbench.json).
class TrendReporter : public benchmark::ConsoleReporter {
 public:
  explicit TrendReporter(obs::RunReport& report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const std::string name = run.benchmark_name();
      if (run.iterations > 0) {
        report_.scalars[name + ".real_time_s_per_iter"] =
            run.real_accumulated_time /
            static_cast<double>(run.iterations);
      }
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        report_.scalars[name + ".items_per_second"] =
            static_cast<double>(items->second);
      }
    }
  }

 private:
  obs::RunReport& report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  plc::bench::Harness harness("kernel_microbench");
  TrendReporter reporter(harness.report());
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  // Overhead-budget proof (budgets: ~0% disabled, < 5% enabled), from the
  // interleaved paired measurement so machine noise cancels.
  auto& scalars = harness.report().scalars;
  if (g_paired_disabled_min_ns > 0 && g_paired_enabled_min_ns > 0) {
    scalars["profiler.enabled_overhead_pct"] =
        100.0 * (static_cast<double>(g_paired_enabled_min_ns) /
                     static_cast<double>(g_paired_disabled_min_ns) -
                 1.0);
    // A disabled PROF_SCOPE costs one relaxed atomic load + branch;
    // amortized over one 10k-event batch it is indistinguishable from 0.
    const auto scope =
        scalars.find("BM_ProfilerScopeDisabled.real_time_s_per_iter");
    const double batch_seconds =
        static_cast<double>(g_paired_disabled_min_ns) / 1e9;
    if (scope != scalars.end() && batch_seconds > 0.0) {
      scalars["profiler.disabled_overhead_pct"] =
          100.0 * scope->second / batch_seconds;
    }
  }

  // Kernel-race scalars: slot-equivalents of simulated time per wall
  // second for each kernel, plus their ratio. bench_gate.sh enforces
  // event.slots_per_sec / slot.slots_per_sec >= 10 as an absolute budget.
  if (g_kernel_race_slot_min_ns > 0 && g_kernel_race_event_min_ns > 0) {
    const double batch_slots =
        static_cast<double>(kKernelRaceBatch.ns()) /
        static_cast<double>(kernel_race_spec().timing.slot.ns());
    scalars["slot.slots_per_sec"] =
        batch_slots * 1e9 / static_cast<double>(g_kernel_race_slot_min_ns);
    scalars["event.slots_per_sec"] =
        batch_slots * 1e9 / static_cast<double>(g_kernel_race_event_min_ns);
    scalars["event.speedup_vs_slot"] =
        static_cast<double>(g_kernel_race_slot_min_ns) /
        static_cast<double>(g_kernel_race_event_min_ns);
  }

  return harness.finish();
}
