// E11 (extended, §2): the priority-resolution mechanism. Only the highest
// contending class runs the backoff process; lower classes defer. Shown
// two ways: (a) pure-MAC stations at mixed priorities — strict starvation
// of CA1 while CA3 is saturated; (b) an ON/OFF CA3 flow preempting a
// saturated CA1 flow only during its ON periods.
#include <iostream>
#include <memory>

#include "bench_main.hpp"
#include "des/scheduler.hpp"
#include "mac/station.hpp"
#include "medium/domain.hpp"
#include "phy/timing.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace plc;

std::unique_ptr<mac::BackoffEntity> entity(frames::Priority priority,
                                           std::uint64_t seed) {
  return std::make_unique<mac::Backoff1901>(
      mac::BackoffConfig::for_priority(static_cast<int>(priority)),
      des::RandomStream(seed));
}

}  // namespace

int main() {
  plc::bench::Harness harness("ext_priority_classes");
  const des::SimTime mpdu = des::SimTime::from_us(2050.0);

  std::cout << "=== E11: priority classes and the resolution phase ===\n\n";
  std::cout << "--- (a) saturated mixed-priority stations, 60 s ---\n";
  {
    des::Scheduler scheduler;
    medium::ContentionDomain domain(scheduler,
                                    phy::TimingConfig::paper_default());
    mac::SaturatedStation ca1a(entity(frames::Priority::kCa1, 1),
                               frames::Priority::kCa1, mpdu);
    mac::SaturatedStation ca1b(entity(frames::Priority::kCa1, 2),
                               frames::Priority::kCa1, mpdu);
    mac::SaturatedStation ca3(entity(frames::Priority::kCa3, 3),
                              frames::Priority::kCa3, mpdu);
    domain.add_participant(ca1a);
    domain.add_participant(ca1b);
    domain.add_participant(ca3);
    domain.start();
    scheduler.run_until(des::SimTime::from_seconds(60.0));

    util::TablePrinter table({"station", "priority", "successes",
                              "attempts"});
    table.add_row({"A", "CA1", std::to_string(ca1a.stats().successes),
                   std::to_string(ca1a.stats().tx_attempts)});
    table.add_row({"B", "CA1", std::to_string(ca1b.stats().successes),
                   std::to_string(ca1b.stats().tx_attempts)});
    table.add_row({"C", "CA3", std::to_string(ca3.stats().successes),
                   std::to_string(ca3.stats().tx_attempts)});
    table.print(std::cout);
    std::cout << "Strict priority: the saturated CA3 station owns the "
                 "medium; CA1 never transmits.\n\n";
    harness.scalar("saturated.ca1_successes") = static_cast<double>(
        ca1a.stats().successes + ca1b.stats().successes);
    harness.scalar("saturated.ca3_successes") =
        static_cast<double>(ca3.stats().successes);
    harness.add_simulated_seconds(60.0);
  }

  std::cout << "--- (b) CA1 saturated vs CA3 queue bursts, 60 s ---\n";
  {
    des::Scheduler scheduler;
    medium::ContentionDomain domain(scheduler,
                                    phy::TimingConfig::paper_default());
    mac::SaturatedStation ca1(entity(frames::Priority::kCa1, 4),
                              frames::Priority::kCa1, mpdu);
    mac::QueueStation ca3(entity(frames::Priority::kCa3, 5),
                          frames::Priority::kCa3, mpdu, scheduler);
    domain.add_participant(ca1);
    domain.add_participant(ca3);
    domain.start();
    // A burst of 20 CA3 frames once per second.
    for (int second = 0; second < 60; ++second) {
      scheduler.schedule_at(des::SimTime::from_seconds(second), [&] {
        for (int i = 0; i < 20; ++i) ca3.enqueue_frame();
        domain.notify_pending();
      });
    }
    scheduler.run_until(des::SimTime::from_seconds(60.0));

    util::TablePrinter table({"station", "successes", "mean CA3 delay (ms)"});
    double mean_delay_ms = 0.0;
    for (const des::SimTime delay : ca3.delays()) {
      mean_delay_ms += delay.us() / 1000.0;
    }
    if (!ca3.delays().empty()) {
      mean_delay_ms /= static_cast<double>(ca3.delays().size());
    }
    table.add_row({"CA1 (saturated)", std::to_string(ca1.stats().successes),
                   "-"});
    table.add_row({"CA3 (bursty)", std::to_string(ca3.stats().successes),
                   util::format_fixed(mean_delay_ms, 2)});
    table.print(std::cout);
    std::cout << "CA3 bursts preempt the CA1 flow and drain with low "
                 "delay; CA1 uses the remaining airtime (approx. "
              << util::format_fixed(
                     100.0 * static_cast<double>(ca1.stats().successes) /
                         static_cast<double>(ca1.stats().successes +
                                             ca3.stats().successes),
                     1)
            << "% of successes).\n";
    harness.scalar("bursty.ca1_successes") =
        static_cast<double>(ca1.stats().successes);
    harness.scalar("bursty.ca3_successes") =
        static_cast<double>(ca3.stats().successes);
    harness.scalar("bursty.ca3_mean_delay_ms") = mean_delay_ms;
    harness.add_simulated_seconds(60.0);
  }
  return harness.finish();
}
