// E2 / Figure 1: time evolution of the 1901 backoff process for two
// saturated stations — CW, DC, BC per station around each transmission,
// in the layout of the paper's figure. Exposes the winner/loser
// asymmetry: the successful station re-enters stage 0 (CW 8) while the
// other climbs stages through deferral-counter expiries.
#include <iostream>

#include "bench_main.hpp"
#include "mac/config.hpp"
#include "sim/slot_simulator.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace plc;
  bench::Harness harness("figure1_trace");

  std::cout << "=== Figure 1: 1901 backoff evolution, 2 saturated "
               "stations ===\n";
  std::cout << "(one row per medium event; compare with the paper's "
               "Figure 1 columns CWi | DC | BC per station)\n\n";

  sim::SlotSimulator simulator(
      sim::make_1901_entities(2, mac::BackoffConfig::ca0_ca1(), 0x0F1));

  util::TablePrinter table({"t (us)", "event", "A: CW", "A: DC", "A: BC",
                            "B: CW", "B: DC", "B: BC"});
  int events = 0;
  simulator.set_observer([&](const sim::SlotEvent& event) {
    if (events >= 40) return;
    ++events;
    const char* kind = "idle slot";
    if (event.type == sim::SlotEventType::kSuccess) {
      kind = event.transmitters.front() == 0 ? "A transmits" : "B transmits";
    } else if (event.type == sim::SlotEventType::kCollision) {
      kind = "collision";
    }
    const mac::BackoffEntity& a = simulator.entity(0);
    const mac::BackoffEntity& b = simulator.entity(1);
    table.add_row({util::format_fixed(event.start.us(), 2), kind,
                   std::to_string(a.contention_window()),
                   std::to_string(a.deferral_counter()),
                   std::to_string(a.backoff_counter()),
                   std::to_string(b.contention_window()),
                   std::to_string(b.deferral_counter()),
                   std::to_string(b.backoff_counter())});
  });
  const sim::SlotSimResults results = simulator.run_events(40);
  table.print(std::cout);

  // Deliberately no event count: 40 events over microseconds of wall time
  // would make the derived events_per_second pure noise, and the gate
  // (plc-benchdiff) treats it as a throughput scalar.
  harness.add_simulated_seconds(results.elapsed.seconds());
  harness.scalar("successes") = static_cast<double>(results.successes);
  harness.scalar("collisions") =
      static_cast<double>(results.collision_events);
  harness.scalar("idle_slots") = static_cast<double>(results.idle_slots);

  std::cout << "\nExpected mechanics (paper Figure 1): a station that wins "
               "re-enters stage 0 (CW 8, DC 0);\nthe other station senses "
               "the medium busy with DC = 0 and jumps to a larger CW "
               "without transmitting.\n";
  return harness.finish();
}
