// Cache effectiveness: the same scenario sweep run cold (empty store,
// every task simulated and published) and then warm (every task served
// from the store). The headline scalar is "cache.speedup" — cold wall
// time over warm wall time — which quantifies what `plcsim scenario
// --cache` and the nightly PLC_CACHE_DIR reuse actually buy. The sweep
// is a scaled-down e6-throughput-vs-n (same four MAC variants, shorter
// sweep) so the bench stays in the fast bench-gate subset.
//
// The warm run must be a 100% hit: any miss means the cache key drifted
// between two identical in-process runs, which is a correctness bug, so
// the bench fails loudly rather than recording a diluted speedup.
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>

#include "bench_main.hpp"
#include "obs/report.hpp"
#include "scenario/registry.hpp"
#include "scenario/run.hpp"
#include "store/result_store.hpp"
#include "util/thread_pool.hpp"

#ifdef _WIN32
#include <process.h>
#define PLC_GETPID _getpid
#else
#include <unistd.h>
#define PLC_GETPID getpid
#endif

int main() {
  using namespace plc;
  bench::Harness harness("cache_speedup");

  // Scaled-down e6: keep the MAC variants (the part that exercises
  // distinct cache keys) but shrink the sweep so cold + warm together
  // stay bench-gate fast.
  scenario::Spec spec = scenario::Registry::get("e6-throughput-vs-n");
  spec.name = "cache-speedup";
  spec.title = "Cache speedup probe (scaled-down e6)";
  spec.stations = {5, 15, 30};
  spec.duration = des::SimTime::from_seconds(20.0);
  spec.repetitions = 3;
  spec.legs.model = false;
  spec.legs.testbed = false;
  spec.legs.exact_pair = false;

  const std::filesystem::path root =
      std::filesystem::temp_directory_path() /
      ("plc-bench-cache-" + std::to_string(PLC_GETPID()));
  std::filesystem::remove_all(root);

  const int jobs = util::jobs_from_env();
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
  store::Counters warm_counters;
  {
    store::ResultStore cold_store(root.string());
    scenario::RunOptions options;
    options.jobs = jobs;
    options.store = &cold_store;
    obs::Stopwatch wall;
    const scenario::RunOutcome outcome =
        scenario::run_scenario(spec, options);
    cold_seconds = wall.elapsed_seconds();
    harness.add_simulated_seconds(outcome.report.simulated_seconds);
    harness.report().scenario = outcome.report.scenario;
  }
  {
    store::ResultStore warm_store(root.string());
    scenario::RunOptions options;
    options.jobs = jobs;
    options.store = &warm_store;
    obs::Stopwatch wall;
    scenario::run_scenario(spec, options);
    warm_seconds = wall.elapsed_seconds();
    warm_counters = warm_store.counters();
  }
  std::filesystem::remove_all(root);

  if (warm_counters.misses != 0 || warm_counters.hits == 0) {
    std::fprintf(stderr,
                 "bench_cache_speedup: warm run was not a full hit "
                 "(%lld hits, %lld misses) — cache key instability\n",
                 static_cast<long long>(warm_counters.hits),
                 static_cast<long long>(warm_counters.misses));
    return 1;
  }

  const double speedup =
      warm_seconds > 0.0 ? cold_seconds / warm_seconds : 1.0;
  harness.scalar("cache.speedup") = speedup;
  harness.scalar("cache.cold_seconds") = cold_seconds;
  harness.scalar("cache.warm_seconds") = warm_seconds;
  harness.scalar("cache.warm_hits") =
      static_cast<double>(warm_counters.hits);
  std::cout << "cache speedup: cold "
            << util::format_fixed(cold_seconds, 3) << " s, warm "
            << util::format_fixed(warm_seconds, 3) << " s ("
            << util::format_fixed(speedup, 1) << "x, "
            << warm_counters.hits << "/" << warm_counters.hits
            << " tasks from store)\n";
  return harness.finish();
}
