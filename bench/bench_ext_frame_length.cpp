// E16 (extended): frame-length efficiency. The fixed CSMA/CA overheads
// (priority resolution, preamble, RIFS, SACK, CIFS, backoff slots, and
// the post-collision EIFS) are amortized over the frame payload, so
// normalized throughput rises with the frame duration — the reason 1901
// aggregates Ethernet frames into long MPDUs and bursts (§3.1) in the
// first place. Simulation and model across frame durations and N.
#include <iostream>

#include "analysis/model_1901.hpp"
#include "bench_main.hpp"
#include "mac/config.hpp"
#include "phy/timing.hpp"
#include "sim/sim_1901.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace plc;
  bench::Harness harness("ext_frame_length");
  const mac::BackoffConfig ca1 = mac::BackoffConfig::ca0_ca1();

  std::cout << "=== E16: normalized throughput vs frame duration ===\n";
  std::cout << "(overheads fixed at the paper's Ts/Tc residuals: success "
               "+492.64 us, collision +870.64 us)\n\n";

  util::TablePrinter table({"frame (us)", "N=2 sim", "N=2 model",
                            "N=10 sim", "N=10 model"});
  for (const double frame_us : {250.0, 500.0, 1025.0, 2050.0, 4100.0}) {
    const double ts_us = frame_us + 492.64;
    const double tc_us = frame_us + 870.64;
    const des::SimTime frame = des::SimTime::from_us(frame_us);
    const phy::TimingConfig timing = phy::TimingConfig::from_ts_tc(
        des::SimTime::from_ns(35'840), des::SimTime::from_us(ts_us),
        des::SimTime::from_us(tc_us), frame);

    std::vector<std::string> row = {util::format_fixed(frame_us, 0)};
    for (const int n : {2, 10}) {
      const auto simulated = sim::sim_1901(n, 4e7, tc_us, ts_us, frame_us,
                                           ca1.cw, ca1.dc, 0xE16);
      const auto model = analysis::solve_1901(n, ca1);
      row.push_back(util::format_fixed(simulated.normalized_throughput, 4));
      row.push_back(
          util::format_fixed(model.normalized_throughput(timing, frame), 4));
      const std::string prefix =
          "frame" + std::to_string(static_cast<int>(frame_us)) + ".n" +
          std::to_string(n) + ".";
      harness.scalar(prefix + "sim_throughput") =
          simulated.normalized_throughput;
      harness.scalar(prefix + "model_throughput") =
          model.normalized_throughput(timing, frame);
      harness.add_simulated_seconds(4e7 / 1e6);
    }
    table.add_row(row);
  }
  table.print(std::cout);

  std::cout << "\nShape checks: throughput rises steeply with frame "
               "duration and saturates (overhead amortization); the gain "
               "from aggregation is largest at small frames, which is "
               "why the standard aggregates 512-byte PBs into ~2 ms "
               "MPDUs and 2-4 MPDU bursts.\n";
  return harness.finish();
}
