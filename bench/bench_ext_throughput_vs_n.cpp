// E6 (extended): normalized throughput vs number of stations — 1901 at
// CA0/CA1 and CA2/CA3 defaults against 802.11 DCF flavours, simulation
// next to the analytical models. The 1901 design premise is visible here:
// a small CWmin plus the deferral counter holds throughput nearly flat in
// N, while a DCF with the same small windows collapses and a standard DCF
// wastes idle slots at small N.
//
// The four MAC variants and the station sweep are the registry's
// "e6-throughput-vs-n" spec (scenarios/e6-throughput-vs-n.json; `plcsim
// scenario e6-throughput-vs-n`); this bench drives it and leaves
// BENCH_ext_throughput_vs_n.json behind, spec embedded.
#include <iostream>

#include "bench_main.hpp"
#include "scenario/registry.hpp"
#include "scenario/run.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace plc;
  bench::Harness harness("ext_throughput_vs_n");
  const scenario::Spec spec = scenario::Registry::get("e6-throughput-vs-n");

  // 9 N values x 4 MAC variants x 3 repetitions, every task sharded
  // across $PLC_JOBS workers — bit-identical to the serial sweep for any
  // jobs count.
  const int jobs = util::jobs_from_env();
  scenario::RunOptions options;
  options.jobs = jobs;
  options.out = &std::cout;
  options.registry = &harness.registry();
  const auto cache = bench::open_store_from_env();  // $PLC_CACHE_DIR
  options.store = cache.get();
  const scenario::RunOutcome outcome = scenario::run_scenario(spec, options);

  harness.report().scalars = outcome.report.scalars;
  harness.report().events = outcome.report.events;
  harness.report().scenario = outcome.report.scenario;
  harness.add_simulated_seconds(outcome.report.simulated_seconds);
  bench::record_parallel(harness, jobs, outcome.wall_seconds,
                         outcome.serial_equivalent_seconds);
  if (cache) bench::record_cache(harness, *cache);

  std::cout << "\nShape checks: 1901 throughput decays gently with N; "
               "DCF with 1901's window range (8..64) and no deferral "
               "counter degrades much faster at large N; standard DCF "
               "(16..1024) pays idle-slot overhead at small N.\n";
  return harness.finish();
}
