// E6 (extended): normalized throughput vs number of stations — 1901 at
// CA0/CA1 and CA2/CA3 defaults against 802.11 DCF flavours, simulation
// next to the analytical models. The 1901 design premise is visible here:
// a small CWmin plus the deferral counter holds throughput nearly flat in
// N, while a DCF with the same small windows collapses and a standard DCF
// wastes idle slots at small N.
#include <cstddef>
#include <iostream>
#include <vector>

#include "analysis/model_1901.hpp"
#include "analysis/model_dcf.hpp"
#include "bench_main.hpp"
#include "mac/config.hpp"
#include "sim/parallel_runner.hpp"
#include "sim/runner.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

plc::sim::RunSpec bench_spec(plc::sim::RunSpec spec) {
  spec.duration = plc::des::SimTime::from_seconds(60.0);
  spec.repetitions = 3;
  return spec;
}

}  // namespace

int main() {
  using namespace plc;
  bench::Harness harness("ext_throughput_vs_n");
  const sim::SlotTiming timing;
  const des::SimTime frame = des::SimTime::from_us(2050.0);

  std::cout << "=== E6: normalized throughput vs N — 1901 vs 802.11 DCF "
               "===\n";
  std::cout << "(sim: 3 x 60 s per point; model: decoupling fixed "
               "points)\n\n";

  // 9 N values x 4 MAC variants = 36 independent sweep points; every
  // (point x repetition) task is sharded across $PLC_JOBS workers. The
  // ParallelRunner is bit-identical to the serial run_point loop it
  // replaces, for any jobs count (seeds are per-spec, merges are in
  // task order).
  const int jobs = bench::jobs_from_env();
  const std::vector<int> station_counts = {1, 2, 3, 5, 7, 10, 15, 20, 30};
  std::vector<sim::RunSpec> specs;  // 4 variants per N, in table order.
  for (const int n : station_counts) {
    sim::RunSpec ca1;
    ca1.stations = n;
    ca1.seed = 0xE6 + static_cast<std::uint64_t>(n);

    sim::RunSpec ca3 = ca1;
    ca3.config = mac::BackoffConfig::ca2_ca3();

    sim::RunSpec dcf = ca1;
    dcf.mac = sim::MacKind::kDcf;
    dcf.dcf_cw_min = 16;
    dcf.dcf_cw_max = 1024;

    sim::RunSpec dcf_small = dcf;
    dcf_small.dcf_cw_min = 8;
    dcf_small.dcf_cw_max = 64;

    specs.push_back(bench_spec(ca1));
    specs.push_back(bench_spec(ca3));
    specs.push_back(bench_spec(dcf));
    specs.push_back(bench_spec(dcf_small));
  }
  sim::ParallelRunner runner(jobs);
  const std::vector<sim::RunSummary> summaries = runner.run_points(specs);

  util::TablePrinter table({"N", "1901 CA1 sim", "1901 CA1 model",
                            "1901 CA3 sim", "DCF 16..1024 sim",
                            "DCF 16..1024 model", "DCF 8..64 sim"});
  for (std::size_t row = 0; row < station_counts.size(); ++row) {
    const int n = station_counts[row];
    const analysis::Model1901Result model_1901 =
        analysis::solve_1901(n, mac::BackoffConfig::ca0_ca1());
    const analysis::ModelDcfResult model_dcf =
        analysis::solve_dcf(n, 16, 1024);

    const double ca1_sim =
        summaries[4 * row + 0].normalized_throughput.mean();
    const double ca3_sim =
        summaries[4 * row + 1].normalized_throughput.mean();
    const double dcf_sim =
        summaries[4 * row + 2].normalized_throughput.mean();
    const double dcf_small_sim =
        summaries[4 * row + 3].normalized_throughput.mean();
    table.add_row(
        {std::to_string(n), util::format_fixed(ca1_sim, 4),
         util::format_fixed(model_1901.normalized_throughput(timing, frame),
                            4),
         util::format_fixed(ca3_sim, 4), util::format_fixed(dcf_sim, 4),
         util::format_fixed(model_dcf.normalized_throughput(timing, frame),
                            4),
         util::format_fixed(dcf_small_sim, 4)});

    const std::string prefix = "n" + std::to_string(n) + ".";
    harness.scalar(prefix + "ca1_sim") = ca1_sim;
    harness.scalar(prefix + "ca1_model") =
        model_1901.normalized_throughput(timing, frame);
    harness.scalar(prefix + "ca3_sim") = ca3_sim;
    harness.scalar(prefix + "dcf_sim") = dcf_sim;
    harness.scalar(prefix + "dcf_small_sim") = dcf_small_sim;
    // 4 variants x 3 reps x 60 s per N.
    harness.add_simulated_seconds(4 * 3 * 60.0);
  }
  table.print(std::cout);
  bench::record_parallel(harness, jobs, runner.wall_seconds(),
                         runner.serial_equivalent_seconds());

  std::cout << "\nShape checks: 1901 throughput decays gently with N; "
               "DCF with 1901's window range (8..64) and no deferral "
               "counter degrades much faster at large N; standard DCF "
               "(16..1024) pays idle-slot overhead at small N.\n";
  return harness.finish();
}
