// E17 (extended): the retransmission limit. The paper's simulator assumes
// infinite retries ("they never discard a frame until it is successfully
// transmitted"); the standard drops a frame at its retry limit. This
// bench quantifies what the idealization hides: frame loss rate, the
// collision probability, and throughput for retry limits 1, 3, 7 and
// infinity across N.
#include <iostream>
#include <memory>

#include "bench_main.hpp"
#include "des/scheduler.hpp"
#include "mac/station.hpp"
#include "medium/domain.hpp"
#include "phy/timing.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace plc;

const des::SimTime kMpdu = des::SimTime::from_ns(2'050'000);

struct CaseResult {
  double loss_rate = 0.0;      ///< Drops / (successes + drops).
  double collision_probability = 0.0;
  double throughput = 0.0;
};

CaseResult run_case(int n, int retry_limit, double seconds) {
  des::Scheduler scheduler;
  medium::ContentionDomain domain(scheduler,
                                  phy::TimingConfig::paper_default());
  des::RandomStream root(0xE17);
  std::vector<std::unique_ptr<mac::SaturatedStation>> stations;
  for (int i = 0; i < n; ++i) {
    stations.push_back(std::make_unique<mac::SaturatedStation>(
        std::make_unique<mac::Backoff1901>(
            mac::BackoffConfig::ca0_ca1(),
            des::RandomStream(
                root.derive_seed("s" + std::to_string(i)))),
        frames::Priority::kCa1, kMpdu, 1, retry_limit));
    domain.add_participant(*stations.back());
  }
  domain.start();
  scheduler.run_until(des::SimTime::from_seconds(seconds));

  CaseResult result;
  std::int64_t successes = 0;
  std::int64_t drops = 0;
  for (const auto& station : stations) {
    successes += station->stats().successes;
    drops += station->stats().drops;
  }
  result.loss_rate = successes + drops > 0
                         ? static_cast<double>(drops) /
                               static_cast<double>(successes + drops)
                         : 0.0;
  result.collision_probability =
      domain.stats().collision_probability();
  result.throughput = domain.stats().normalized_throughput();
  return result;
}

}  // namespace

int main() {
  plc::bench::Harness harness("ext_retry_limit");
  std::cout << "=== E17: retransmission limit vs the paper's "
               "infinite-retry assumption ===\n";
  std::cout << "(saturated CA1 stations, 60 s per case; limit 0 = "
               "infinite)\n\n";

  util::TablePrinter table({"N", "retry limit", "frame loss", "coll. prob",
                            "norm. throughput"});
  for (const int n : {3, 7, 15}) {
    for (const int limit : {1, 3, 7, 0}) {
      const CaseResult result = run_case(n, limit, 60.0);
      table.add_row({std::to_string(n),
                     limit == 0 ? "inf" : std::to_string(limit),
                     util::format_fixed(result.loss_rate, 4),
                     util::format_fixed(result.collision_probability, 4),
                     util::format_fixed(result.throughput, 4)});
      const std::string prefix =
          "n" + std::to_string(n) + ".limit" +
          (limit == 0 ? std::string("inf") : std::to_string(limit)) + ".";
      harness.scalar(prefix + "loss_rate") = result.loss_rate;
      harness.scalar(prefix + "throughput") = result.throughput;
      harness.add_simulated_seconds(60.0);
    }
  }
  table.print(std::cout);

  std::cout << "\nShape checks: loss falls steeply with the limit (the "
               "per-attempt collision probability is ~0.1-0.4, so three "
               "retries already push loss below a percent at small N). "
               "Tight limits *raise* the collision probability: dropping "
               "resets the station to stage 0, shortcutting the high-CW "
               "stages that would have spaced the retries out. The "
               "paper's infinite-retry idealization barely moves "
               "throughput but hides loss entirely.\n";
  return harness.finish();
}
