// Shared epilogue for every bench binary: each `bench_*` packages its run
// into an obs::RunReport and leaves a machine-readable BENCH_<name>.json
// behind, so repeated runs accumulate the perf trajectory that
// `plc-benchdiff` (and scripts/bench_gate.sh) compare against a baseline.
//
// Usage:
//   int main() {
//     plc::bench::Harness harness("ext_frame_length");
//     ... run experiments, harness.report().scalars["..."] = ...;
//     return harness.finish();
//   }
//
// finish() stamps wall time, snapshots the harness registry into the
// report (pass harness.registry() into testbed/runner observability to
// make the des.* counters land there), recovers the event count from
// des.events_dispatched when the harness didn't set one, attaches the
// phase-profiler aggregate when PLC_PROFILE is on, and saves the file —
// into $PLC_BENCH_DIR when set, else the working directory.
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"
#include "store/result_store.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace plc::bench {

/// Directory BENCH_*.json files land in: $PLC_BENCH_DIR or "." — always
/// with a trailing separator applied by output_path().
inline std::string output_path(const std::string& name) {
  std::string path = "BENCH_" + name + ".json";
  if (const char* dir = std::getenv("PLC_BENCH_DIR");
      dir != nullptr && dir[0] != '\0') {
    std::string prefix(dir);
    if (prefix.back() != '/') prefix.push_back('/');
    path = prefix + path;
  }
  return path;
}

class Harness {
 public:
  explicit Harness(std::string name) { report_.name = std::move(name); }

  obs::RunReport& report() { return report_; }
  /// Bind this into testbed/runner observability so scheduler and medium
  /// counters accumulate across every run the bench performs.
  obs::Registry& registry() { return registry_; }

  /// Convenience accessor mirroring report().scalars[key].
  double& scalar(const std::string& key) { return report_.scalars[key]; }

  /// Accumulates simulated seconds across sweep points.
  void add_simulated_seconds(double seconds) {
    report_.simulated_seconds += seconds;
  }

  /// Stamps the report, saves BENCH_<name>.json and returns the process
  /// exit code (0). Call exactly once, as `return harness.finish();`.
  int finish() {
    report_.wall_seconds = stopwatch_.elapsed_seconds();
    report_.metrics = registry_.snapshot();
    if (report_.events == 0) {
      if (const obs::MetricSample* dispatched =
              report_.metrics.find("des.events_dispatched")) {
        report_.events = static_cast<std::int64_t>(dispatched->value);
      }
    }
    if (obs::Profiler::enabled()) {
      report_.profile = obs::Profiler::instance().snapshot();
    }
    const std::string path = output_path(report_.name);
    report_.save(path);
    PLC_LOG_INFO("bench", "report saved")
        .str("path", path)
        .num("scalars", static_cast<double>(report_.scalars.size()))
        .num("wall_seconds", report_.wall_seconds);
    std::cout << "\nwrote " << path << " (" << report_.scalars.size()
              << " scalars";
    if (report_.events > 0) {
      std::cout << ", " << report_.events << " scheduler events";
    }
    if (report_.simulated_seconds > 0.0 && report_.wall_seconds > 0.0) {
      std::cout << ", "
                << util::format_fixed(report_.sim_seconds_per_wall_second(),
                                      1)
                << " sim-s/wall-s";
    }
    std::cout << ")\n";
    return 0;
  }

 private:
  obs::Stopwatch stopwatch_;
  obs::Registry registry_;
  obs::RunReport report_;
};

/// Records the parallel phase of a bench in its report: how many workers
/// ran, the phase's wall time, the summed per-task wall time, and the
/// resulting speedup scalar ("parallel.speedup_vs_serial" — named so the
/// bench gate's throughput patterns never match it; it is wall-clock
/// noise, not a regression signal). Also prints a one-line summary.
inline void record_parallel(Harness& harness, int jobs, double wall_seconds,
                            double serial_equivalent_seconds) {
  const double speedup = wall_seconds > 0.0 && serial_equivalent_seconds > 0.0
                             ? serial_equivalent_seconds / wall_seconds
                             : 1.0;
  harness.scalar("parallel.jobs") =
      static_cast<double>(util::ThreadPool::resolve_jobs(jobs));
  harness.scalar("parallel.wall_seconds") = wall_seconds;
  harness.scalar("parallel.serial_equivalent_seconds") =
      serial_equivalent_seconds;
  harness.scalar("parallel.speedup_vs_serial") = speedup;
  std::cout << "\nparallel: jobs="
            << util::ThreadPool::resolve_jobs(jobs) << "  speedup="
            << util::format_fixed(speedup, 2) << "x (serial-equivalent "
            << util::format_fixed(serial_equivalent_seconds, 2) << " s in "
            << util::format_fixed(wall_seconds, 2) << " s wall)\n";
}

/// Opens the shared result store at $PLC_CACHE_DIR, or returns null when
/// the variable is unset/empty. Heavy benches pass the store into
/// scenario::RunOptions so nightly re-runs skip already-computed
/// (leg, point, rep) tasks; results are bit-identical either way, so the
/// cache only changes wall time, never the gated scalars.
inline std::unique_ptr<store::ResultStore> open_store_from_env() {
  if (const char* dir = std::getenv("PLC_CACHE_DIR");
      dir != nullptr && dir[0] != '\0') {
    return std::make_unique<store::ResultStore>(dir);
  }
  return nullptr;
}

/// Records the store's traffic in the report ("cache.*" scalars — named,
/// like parallel.*, so the bench gate's throughput patterns never match
/// them; hit counts depend on what previous runs left in the store and
/// are context, not a regression signal). Also prints a one-line summary.
inline void record_cache(Harness& harness, const store::ResultStore& cache) {
  const store::Counters counters = cache.counters();
  harness.scalar("cache.hits") = static_cast<double>(counters.hits);
  harness.scalar("cache.misses") = static_cast<double>(counters.misses);
  harness.scalar("cache.publishes") = static_cast<double>(counters.publishes);
  const std::int64_t lookups = counters.hits + counters.misses;
  std::cout << "\ncache: " << counters.hits << " hit(s), "
            << counters.misses << " miss(es)";
  if (lookups > 0) {
    std::cout << " ("
              << util::format_fixed(
                     100.0 * static_cast<double>(counters.hits) /
                         static_cast<double>(lookups),
                     1)
              << "% hit rate)";
  }
  std::cout << ", " << counters.publishes << " published\n";
}

}  // namespace plc::bench
