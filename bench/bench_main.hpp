// Shared epilogue for every bench binary: each `bench_*` packages its run
// into an obs::RunReport and leaves a machine-readable BENCH_<name>.json
// behind, so repeated runs accumulate the perf trajectory that
// `plc-benchdiff` (and scripts/bench_gate.sh) compare against a baseline.
//
// Usage:
//   int main() {
//     plc::bench::Harness harness("ext_frame_length");
//     ... run experiments, harness.report().scalars["..."] = ...;
//     return harness.finish();
//   }
//
// finish() stamps wall time, snapshots the harness registry into the
// report (pass harness.registry() into testbed/runner observability to
// make the des.* counters land there), recovers the event count from
// des.events_dispatched when the harness didn't set one, attaches the
// phase-profiler aggregate when PLC_PROFILE is on, and saves the file —
// into $PLC_BENCH_DIR when set, else the working directory.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"
#include "util/strings.hpp"

namespace plc::bench {

/// Directory BENCH_*.json files land in: $PLC_BENCH_DIR or "." — always
/// with a trailing separator applied by output_path().
inline std::string output_path(const std::string& name) {
  std::string path = "BENCH_" + name + ".json";
  if (const char* dir = std::getenv("PLC_BENCH_DIR");
      dir != nullptr && dir[0] != '\0') {
    std::string prefix(dir);
    if (prefix.back() != '/') prefix.push_back('/');
    path = prefix + path;
  }
  return path;
}

class Harness {
 public:
  explicit Harness(std::string name) { report_.name = std::move(name); }

  obs::RunReport& report() { return report_; }
  /// Bind this into testbed/runner observability so scheduler and medium
  /// counters accumulate across every run the bench performs.
  obs::Registry& registry() { return registry_; }

  /// Convenience accessor mirroring report().scalars[key].
  double& scalar(const std::string& key) { return report_.scalars[key]; }

  /// Accumulates simulated seconds across sweep points.
  void add_simulated_seconds(double seconds) {
    report_.simulated_seconds += seconds;
  }

  /// Stamps the report, saves BENCH_<name>.json and returns the process
  /// exit code (0). Call exactly once, as `return harness.finish();`.
  int finish() {
    report_.wall_seconds = stopwatch_.elapsed_seconds();
    report_.metrics = registry_.snapshot();
    if (report_.events == 0) {
      if (const obs::MetricSample* dispatched =
              report_.metrics.find("des.events_dispatched")) {
        report_.events = static_cast<std::int64_t>(dispatched->value);
      }
    }
    if (obs::Profiler::enabled()) {
      report_.profile = obs::Profiler::instance().snapshot();
    }
    const std::string path = output_path(report_.name);
    report_.save(path);
    PLC_LOG_INFO("bench", "report saved")
        .str("path", path)
        .num("scalars", static_cast<double>(report_.scalars.size()))
        .num("wall_seconds", report_.wall_seconds);
    std::cout << "\nwrote " << path << " (" << report_.scalars.size()
              << " scalars";
    if (report_.events > 0) {
      std::cout << ", " << report_.events << " scheduler events";
    }
    if (report_.simulated_seconds > 0.0 && report_.wall_seconds > 0.0) {
      std::cout << ", "
                << util::format_fixed(report_.sim_seconds_per_wall_second(),
                                      1)
                << " sim-s/wall-s";
    }
    std::cout << ")\n";
    return 0;
  }

 private:
  obs::Stopwatch stopwatch_;
  obs::Registry registry_;
  obs::RunReport report_;
};

}  // namespace plc::bench
