// E10 (extended, §3.3 methodology): management-message overhead measured
// with the sniffer exactly as the paper prescribes — MME bursts divided
// by data bursts, identified on SoF delimiters (Link ID priority, MPDUCnt
// burst boundaries). Periodic CA2 management chatter is injected at
// several rates and its cost in data throughput is shown next to the
// measured overhead ratio.
#include <iostream>

#include "bench_main.hpp"
#include "tools/testbed.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace plc;
  bench::Harness harness("ext_mme_overhead");

  std::cout << "=== E10: MME overhead via the sniffer (bursts of MMEs / "
               "bursts of data) ===\n";
  std::cout << "(2 saturated CA1 stations -> D, 60 s; each station also "
               "emits periodic CA2 MMEs)\n\n";

  util::TablePrinter table({"MME interval (ms)", "measured overhead",
                            "data bursts", "norm. throughput",
                            "collision prob"});
  for (const double interval_ms : {0.0, 100.0, 20.0, 5.0}) {
    tools::TestbedConfig config;
    config.stations = 2;
    config.duration = des::SimTime::from_seconds(60.0);
    config.sniff_at_destination = true;
    config.seed = 0xE10;
    if (interval_ms > 0.0) {
      config.mme_interval = des::SimTime::from_us(interval_ms * 1000.0);
    }
    config.registry = &harness.registry();
    const tools::TestbedResult result = tools::run_saturated_testbed(config);
    table.add_row({interval_ms == 0.0 ? "off" : util::format_fixed(interval_ms, 0),
                   util::format_fixed(result.mme_overhead, 4),
                   std::to_string(result.data_burst_sources.size()),
                   util::format_fixed(result.domain.normalized_throughput(), 4),
                   util::format_fixed(result.collision_probability, 4)});
    harness.add_simulated_seconds((config.warmup + config.duration).seconds());
    const std::string prefix =
        interval_ms == 0.0
            ? std::string("off.")
            : "ms" + std::to_string(static_cast<int>(interval_ms)) + ".";
    harness.scalar(prefix + "mme_overhead") = result.mme_overhead;
    harness.scalar(prefix + "normalized_throughput") =
        result.domain.normalized_throughput();
  }
  table.print(std::cout);

  std::cout << "\nShape checks: overhead scales inversely with the MME "
               "interval; every MME burst consumes CSMA/CA time (backoff, "
               "priority resolution, inter-frame spaces), so data "
               "throughput drops as chatter grows.\n";
  return harness.finish();
}
