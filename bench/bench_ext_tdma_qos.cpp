// E15 (extended): the hybrid beacon period — what a TDMA allocation buys
// a delay-sensitive flow. A CBR "voice-like" flow (one frame every 10 ms)
// shares the strip with background-saturated stations, either contending
// in the CSMA region at CA1/CA3 or owning a contention-free allocation.
// Reported: mean / p99 delay of the flow and the background's throughput
// cost of the reservation.
#include <iostream>
#include <memory>

#include "bench_main.hpp"
#include "des/scheduler.hpp"
#include "mac/station.hpp"
#include "medium/beacon.hpp"
#include "medium/domain.hpp"
#include "phy/timing.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace plc;

const des::SimTime kMpdu = des::SimTime::from_ns(2'050'000);
// A small voice-like frame: 200 us of payload.
const des::SimTime kVoiceMpdu = des::SimTime::from_ns(200'000);

std::unique_ptr<mac::BackoffEntity> entity(frames::Priority priority,
                                           std::uint64_t seed) {
  return std::make_unique<mac::Backoff1901>(
      mac::BackoffConfig::for_priority(static_cast<int>(priority)),
      des::RandomStream(seed));
}

struct CaseResult {
  double mean_ms = 0.0;
  double p99_ms = 0.0;
  double background_throughput = 0.0;
};

enum class FlowMode { kCsmaCa1, kCsmaCa3, kTdma };

CaseResult run_case(FlowMode mode, int background_stations,
                    double seconds) {
  des::Scheduler scheduler;
  medium::ContentionDomain domain(scheduler,
                                  phy::TimingConfig::paper_default());

  const frames::Priority flow_priority =
      mode == FlowMode::kCsmaCa3 ? frames::Priority::kCa3
                                 : frames::Priority::kCa1;
  mac::QueueStation flow(entity(flow_priority, 0xF10),
                         flow_priority, kVoiceMpdu, scheduler);
  const int flow_id = domain.add_participant(flow);

  std::vector<std::unique_ptr<mac::SaturatedStation>> background;
  for (int i = 0; i < background_stations; ++i) {
    background.push_back(std::make_unique<mac::SaturatedStation>(
        entity(frames::Priority::kCa1, 0xB9 + i), frames::Priority::kCa1,
        kMpdu, 1));
    domain.add_participant(*background.back());
  }

  if (mode == FlowMode::kTdma) {
    // One 4 ms allocation per 33.33 ms beacon period. Each voice exchange
    // costs ~0.7 ms (200 us payload + fixed overheads), so the allocation
    // carries ~5 frames per period — comfortably above the offered
    // 3.3 frames/period.
    domain.set_beacon_schedule(medium::BeaconSchedule::default_60hz(
        {{flow_id, des::SimTime::from_us(2'000.0),
          des::SimTime::from_us(4'000.0)}}));
  }

  // CBR arrivals: one frame every 10 ms.
  for (int k = 0; k * 10'000 < seconds * 1e6; ++k) {
    scheduler.schedule_at(des::SimTime::from_us(k * 10'000.0), [&] {
      flow.enqueue_frame();
      domain.notify_pending();
    });
  }

  domain.start();
  scheduler.run_until(des::SimTime::from_seconds(seconds));

  CaseResult result;
  util::QuantileEstimator delays;
  util::RunningStats mean;
  for (const des::SimTime delay : flow.delays()) {
    delays.add(delay.us() / 1000.0);
    mean.add(delay.us() / 1000.0);
  }
  if (delays.count() > 0) {
    result.mean_ms = mean.mean();
    result.p99_ms = delays.quantile(0.99);
  }
  std::int64_t background_successes = 0;
  for (const auto& station : background) {
    background_successes += station->stats().successes;
  }
  result.background_throughput =
      static_cast<double>(background_successes) * kMpdu.us() /
      (seconds * 1e6);
  return result;
}

}  // namespace

int main() {
  plc::bench::Harness harness("ext_tdma_qos");
  std::cout << "=== E15: TDMA allocation vs CSMA for a delay-sensitive "
               "flow ===\n";
  std::cout << "(100 fps CBR flow + saturated CA1 background; 60 s per "
               "case)\n\n";

  util::TablePrinter table({"background N", "flow mode", "mean delay (ms)",
                            "p99 delay (ms)", "background thr"});
  for (const int n : {2, 5}) {
    const CaseResult ca1 = run_case(FlowMode::kCsmaCa1, n, 60.0);
    const CaseResult ca3 = run_case(FlowMode::kCsmaCa3, n, 60.0);
    const CaseResult tdma = run_case(FlowMode::kTdma, n, 60.0);
    table.add_row({std::to_string(n), "CSMA @CA1",
                   util::format_fixed(ca1.mean_ms, 2),
                   util::format_fixed(ca1.p99_ms, 2),
                   util::format_fixed(ca1.background_throughput, 4)});
    table.add_row({std::to_string(n), "CSMA @CA3",
                   util::format_fixed(ca3.mean_ms, 2),
                   util::format_fixed(ca3.p99_ms, 2),
                   util::format_fixed(ca3.background_throughput, 4)});
    table.add_row({std::to_string(n), "TDMA",
                   util::format_fixed(tdma.mean_ms, 2),
                   util::format_fixed(tdma.p99_ms, 2),
                   util::format_fixed(tdma.background_throughput, 4)});
    const std::string prefix = "n" + std::to_string(n) + ".";
    harness.scalar(prefix + "ca1_p99_ms") = ca1.p99_ms;
    harness.scalar(prefix + "ca3_p99_ms") = ca3.p99_ms;
    harness.scalar(prefix + "tdma_p99_ms") = tdma.p99_ms;
    harness.scalar(prefix + "tdma_background_thr") =
        tdma.background_throughput;
    harness.add_simulated_seconds(3 * 60.0);
  }
  table.print(std::cout);

  std::cout << "\nShape checks: at CA1 the flow queues behind saturated "
               "data (tail blows up with N); CA3's priority resolution "
               "already caps the delay at one frame exchange; the TDMA "
               "allocation bounds delay by the beacon period regardless "
               "of contention, at a small fixed cost in background "
               "throughput (beacon + reserved airtime).\n";
  return harness.finish();
}
