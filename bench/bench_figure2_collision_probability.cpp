// E4 / Figure 2: collision probability vs number of stations, three ways —
//   (1) MAC simulation (the paper's slot-level FSM),
//   (2) analysis (decoupling fixed point; plus the exact coupled chain at
//       N = 2, where decoupling visibly overestimates),
//   (3) HomePlug AV measurements (the emulated testbed via ampstat MMEs,
//       averaged over 10 tests as in the paper).
#include <iostream>
#include <string>
#include <vector>

#include "analysis/exact_chain.hpp"
#include "analysis/model_1901.hpp"
#include "bench_main.hpp"
#include "mac/config.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "sim/sim_1901.hpp"
#include "tools/testbed.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace plc;
  const mac::BackoffConfig ca1 = mac::BackoffConfig::ca0_ca1();

  // Run report accumulated across the sweep: the harness registry is
  // bound into all 7 x 10 testbed runs (counters add up), the scalars
  // carry the per-N headline numbers, and the JSON lands next to the
  // binary so BENCH_*.json files accumulate a perf trajectory.
  bench::Harness harness("figure2_collision_probability");
  obs::RunReport& report = harness.report();

  // All 7 x 10 testbed tests are independent; shard them across $PLC_JOBS
  // workers (0 = hardware threads). Seeds are per-config, the suite
  // absorbs metrics in config order, so every number below is identical
  // to the serial loop this replaces, for any jobs count.
  const int jobs = bench::jobs_from_env();
  std::vector<tools::TestbedConfig> configs;
  for (int n = 1; n <= 7; ++n) {
    for (int test = 0; test < 10; ++test) {
      tools::TestbedConfig config;
      config.stations = n;
      config.duration = des::SimTime::from_seconds(60.0);
      config.seed = 0xBEEF + static_cast<std::uint64_t>(100 * n + test);
      config.registry = &harness.registry();
      configs.push_back(config);
    }
  }
  const tools::TestbedSuiteResult suite = tools::run_testbed_suite(configs, jobs);

  // Paper Table 2's measured collision probabilities (the markers of
  // Figure 2).
  const double paper_measured[] = {0.0002, 0.0741, 0.1339, 0.1779,
                                   0.2176, 0.2443, 0.2669};

  std::cout << "=== Figure 2: collision probability vs N (CA1 defaults) "
               "===\n";
  std::cout << "(simulation: sim_1901, 5e8 us; measurement: emulated "
               "testbed, 10 tests x 60 s; analysis: decoupling fixed "
               "point, exact pair chain at N=2)\n\n";

  util::TablePrinter table({"N", "simulation", "measurement (mean)",
                            "measurement (std)", "analysis (decoupled)",
                            "analysis (exact, N=2)", "paper measurement"});
  for (int n = 1; n <= 7; ++n) {
    const sim::Sim1901Result slot = sim::sim_1901(
        n, 5e8, 2920.64, 2542.64, 2050.0, ca1.cw, ca1.dc, 0xF16 + n);

    util::RunningStats measured;
    for (int test = 0; test < 10; ++test) {
      const std::size_t run = static_cast<std::size_t>(10 * (n - 1) + test);
      measured.add(suite.runs[run].collision_probability);
      harness.add_simulated_seconds(
          (configs[run].warmup + configs[run].duration).seconds());
    }

    const analysis::Model1901Result model = analysis::solve_1901(n, ca1);

    std::string exact_cell = "-";
    if (n == 2) {
      const analysis::ExactPairResult exact =
          analysis::solve_exact_pair(ca1, 3000, 1e-10);
      exact_cell = util::format_fixed(exact.collision_probability, 4);
    } else if (n == 1) {
      exact_cell = "0.0000";
    }

    table.add_row({std::to_string(n),
                   util::format_fixed(slot.collision_probability, 4),
                   util::format_fixed(measured.mean(), 4),
                   util::format_fixed(measured.stddev(), 4),
                   util::format_fixed(model.gamma, 4), exact_cell,
                   util::format_fixed(paper_measured[n - 1], 4)});

    const std::string prefix = "n" + std::to_string(n) + ".";
    report.scalars[prefix + "simulation"] = slot.collision_probability;
    report.scalars[prefix + "measured_mean"] = measured.mean();
    report.scalars[prefix + "measured_stddev"] = measured.stddev();
    report.scalars[prefix + "analysis"] = model.gamma;
    report.scalars[prefix + "paper_measured"] = paper_measured[n - 1];
  }
  table.print(std::cout);
  bench::record_parallel(harness, jobs, suite.wall_seconds,
                         suite.serial_equivalent_seconds);

  std::cout
      << "\nShape checks (paper Figure 2): all series grow concavely with "
         "N and agree closely;\nthe decoupled analysis overestimates at "
         "N = 2 (stage anti-correlation — the coupling the CoNEXT paper "
         "models), where the exact chain matches the simulation.\n";
  return harness.finish();
}
