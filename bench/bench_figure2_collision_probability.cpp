// E4 / Figure 2: collision probability vs number of stations, three ways —
// simulation, analysis (decoupling, plus the exact coupled chain at N = 2)
// and the emulated HomePlug AV testbed averaged over 10 tests, against the
// paper's measured markers.
//
// The experiment itself is declarative: scenario::Registry's "figure2"
// spec (also committed as scenarios/figure2.json and runnable via `plcsim
// scenario figure2`). This bench just drives it and packages the outcome
// as BENCH_figure2_collision_probability.json, spec embedded.
#include <iostream>

#include "bench_main.hpp"
#include "scenario/registry.hpp"
#include "scenario/run.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace plc;
  bench::Harness harness("figure2_collision_probability");
  const scenario::Spec spec = scenario::Registry::get("figure2");

  // The driver shards every (point x repetition) simulation and all 7 x 10
  // testbed tests across $PLC_JOBS workers; results are bit-identical to
  // the serial loop for any jobs count. The harness registry is bound in,
  // so des.* counters accumulate across every run.
  const int jobs = util::jobs_from_env();
  scenario::RunOptions options;
  options.jobs = jobs;
  options.out = &std::cout;
  options.registry = &harness.registry();
  const auto cache = bench::open_store_from_env();  // $PLC_CACHE_DIR
  options.store = cache.get();
  const scenario::RunOutcome outcome = scenario::run_scenario(spec, options);

  harness.report().scalars = outcome.report.scalars;
  harness.report().events = outcome.report.events;
  harness.report().scenario = outcome.report.scenario;
  harness.add_simulated_seconds(outcome.report.simulated_seconds);
  bench::record_parallel(harness, jobs, outcome.wall_seconds,
                         outcome.serial_equivalent_seconds);
  if (cache) bench::record_cache(harness, *cache);

  std::cout
      << "\nShape checks (paper Figure 2): all series grow concavely with "
         "N and agree closely;\nthe decoupled analysis overestimates at "
         "N = 2 (stage anti-correlation — the coupling the CoNEXT paper "
         "models), where the exact chain matches the simulation.\n";
  return harness.finish();
}
