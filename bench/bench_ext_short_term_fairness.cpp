// E7 (extended): short-term fairness of 1901 vs 802.11 DCF, the paper's
// §3.3 fairness methodology (and reference [4]) on simulator winner
// traces: sliding-window Jain index over windows of consecutive
// successful bursts, plus reign-length statistics. 1901's winner re-entry
// at CW 8 while losers defer upward produces long single-station reigns —
// strong short-term unfairness at small N that 802.11 does not exhibit to
// the same degree.
#include <iostream>

#include "bench_main.hpp"
#include "mac/config.hpp"
#include "metrics/fairness.hpp"
#include "sim/slot_simulator.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

std::vector<int> winner_trace(int n, bool dcf, std::uint64_t seed) {
  using namespace plc;
  auto entities =
      dcf ? sim::make_dcf_entities(n, 16, 1024, seed)
          : sim::make_1901_entities(n, mac::BackoffConfig::ca0_ca1(), seed);
  sim::SlotSimulator simulator(std::move(entities));
  simulator.enable_winner_trace(true);
  simulator.run(plc::des::SimTime::from_seconds(300.0));
  return simulator.winners();
}

}  // namespace

int main() {
  using namespace plc;
  bench::Harness harness("ext_short_term_fairness");

  std::cout << "=== E7: short-term fairness — sliding-window Jain index "
               "===\n";
  std::cout << "(300 s winner traces; window = consecutive successful "
               "bursts)\n\n";

  util::TablePrinter table({"N", "window", "Jain 1901", "Jain 802.11"});
  for (const int n : {2, 5, 10}) {
    const std::vector<int> trace_1901 =
        winner_trace(n, /*dcf=*/false, 0xFA + static_cast<std::uint64_t>(n));
    const std::vector<int> trace_dcf =
        winner_trace(n, /*dcf=*/true, 0xFB + static_cast<std::uint64_t>(n));
    harness.add_simulated_seconds(2 * 300.0);
    for (const int window : {10, 50, 200, 1000}) {
      const double jain_1901 =
          metrics::sliding_window_jain(trace_1901, n, window).mean();
      const double jain_dcf =
          metrics::sliding_window_jain(trace_dcf, n, window).mean();
      table.add_row({std::to_string(n), std::to_string(window),
                     util::format_fixed(jain_1901, 4),
                     util::format_fixed(jain_dcf, 4)});
      const std::string prefix =
          "n" + std::to_string(n) + ".w" + std::to_string(window) + ".";
      harness.scalar(prefix + "jain_1901") = jain_1901;
      harness.scalar(prefix + "jain_dcf") = jain_dcf;
    }
  }
  table.print(std::cout);

  std::cout << "\n--- reign lengths (consecutive wins by one station) "
               "---\n";
  util::TablePrinter reigns({"N", "MAC", "mean reign", "longest reign"});
  for (const int n : {2, 5}) {
    const metrics::ReignStats r1901 = metrics::reign_lengths(
        winner_trace(n, false, 0xFC + static_cast<std::uint64_t>(n)));
    const metrics::ReignStats rdcf = metrics::reign_lengths(
        winner_trace(n, true, 0xFD + static_cast<std::uint64_t>(n)));
    reigns.add_row({std::to_string(n), "1901",
                    util::format_fixed(r1901.length.mean(), 2),
                    std::to_string(r1901.longest)});
    reigns.add_row({std::to_string(n), "802.11",
                    util::format_fixed(rdcf.length.mean(), 2),
                    std::to_string(rdcf.longest)});
  }
  reigns.print(std::cout);

  std::cout << "\nShape checks: at N = 2 the 1901 Jain index at window 10 "
               "sits well below 802.11's and both approach 1 at window "
               "1000; 1901 reigns are longer.\n";
  return harness.finish();
}
