// E13 (extended): access delay vs offered load in the unsaturated regime.
// The paper's analyses are for saturation; homes are usually not. Here the
// backlog-fixed-point + Pollaczek-Khinchine model (analysis/delay.hpp) is
// put next to the discrete-event simulation for N = 1, 5, 10 stations at
// loads from 10 % to 90 % of the saturation capacity.
#include <iostream>

#include "analysis/delay.hpp"
#include "bench_main.hpp"
#include "phy/timing.hpp"
#include "sim/unsaturated.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace plc;
  bench::Harness harness("ext_delay_vs_load");
  const mac::BackoffConfig ca1 = mac::BackoffConfig::ca0_ca1();
  const phy::TimingConfig timing = phy::TimingConfig::paper_default();
  const des::SimTime frame = des::SimTime::from_us(2050.0);

  std::cout << "=== E13: mean access delay vs load (Poisson arrivals, "
               "CA1 defaults) ===\n";
  std::cout << "(model: backlog fixed point + P-K; sim: 120 s "
               "discrete-event run per point)\n\n";

  util::TablePrinter table({"N", "load (x capacity)", "lambda (fps)",
                            "model E[T] (ms)", "sim mean (ms)",
                            "sim p99 (ms)", "model rho"});
  for (const int n : {1, 5, 10}) {
    const double capacity =
        analysis::saturation_rate_fps(n, ca1, timing, frame);
    for (const double load : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      const double lambda = load * capacity;
      const analysis::DelayModelResult model =
          analysis::access_delay(n, ca1, timing, frame, lambda);
      sim::PoissonMacSpec spec;
      spec.stations = n;
      spec.arrival_rate_fps = lambda;
      spec.duration = des::SimTime::from_seconds(120.0);
      spec.seed = 0xDE1A + static_cast<std::uint64_t>(n * 100 + load * 10);
      const sim::PoissonMacResult simulated = sim::run_poisson_mac(spec);
      table.add_row({std::to_string(n), util::format_fixed(load, 1),
                     util::format_fixed(lambda, 1),
                     util::format_fixed(model.mean_sojourn_s * 1e3, 2),
                     util::format_fixed(simulated.mean_delay_s * 1e3, 2),
                     util::format_fixed(simulated.p99_delay_s * 1e3, 2),
                     util::format_fixed(model.utilization, 2)});
      const std::string prefix =
          "n" + std::to_string(n) + ".load" +
          std::to_string(static_cast<int>(load * 100)) + ".";
      harness.scalar(prefix + "model_mean_ms") = model.mean_sojourn_s * 1e3;
      harness.scalar(prefix + "sim_mean_ms") = simulated.mean_delay_s * 1e3;
      harness.scalar(prefix + "sim_p99_ms") = simulated.p99_delay_s * 1e3;
      harness.add_simulated_seconds(120.0);
    }
  }
  table.print(std::cout);

  std::cout << "\nShape checks: delay grows convexly with load and blows "
               "up approaching capacity; the model is within ~15 % of "
               "simulation at N=1 (its queueing term is exact there) and "
               "overestimates under contention at high load (open-loop "
               "M/G/1 approximation).\n";
  return harness.finish();
}
