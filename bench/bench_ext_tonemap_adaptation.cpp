// E14 (extended, §4.1): tone-map maintenance under a time-varying
// channel. The paper lists the modulation-update MMEs among the
// vendor-secret mechanisms whose "arrival rate depends on the channel
// conditions"; here the modelled version makes that dependence
// measurable: a Gilbert-Elliott channel with varying bad-state frequency
// drives the receiver's tone-map updates, whose rate — and cost in
// goodput — is reported, with adaptation on and off.
#include <iostream>
#include <memory>

#include "bench_main.hpp"
#include "emu/network.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/sources.hpp"

namespace {

using namespace plc;

struct RunResult {
  double updates_per_second = 0.0;
  double goodput_mbps = 0.0;
  double fraction_bad = 0.0;
};

RunResult run_case(double mean_good_s, bool adaptation_enabled,
                   double seconds) {
  emu::Network network(0xE14);
  emu::DeviceConfig config;
  config.adaptation.enabled = adaptation_enabled;
  emu::HpavDevice& sender = network.add_device(config);
  emu::HpavDevice& receiver = network.add_device(config);

  phy::GilbertElliottParams params;
  params.mean_good = des::SimTime::from_seconds(mean_good_s);
  params.mean_bad = des::SimTime::from_seconds(0.2);
  params.good_pb_error = 0.001;
  params.bad_pb_error = 0.40;
  network.add_link_channel(sender.tei(), receiver.tei(), params);

  std::int64_t bytes = 0;
  receiver.set_host_receive([&](const frames::EthernetFrame& frame) {
    if (frame.ether_type == frames::kEtherTypeIpv4) {
      bytes += static_cast<std::int64_t>(frame.payload.size());
    }
  });

  workload::FrameTemplate frame_template;
  frame_template.destination = receiver.mac();
  frame_template.source = sender.mac();
  workload::SaturatedSource source(
      network.scheduler(), frame_template,
      [&sender](frames::EthernetFrame frame) {
        sender.host_send(std::move(frame));
        return sender.tx_backlog_pbs();
      },
      256);

  network.start();
  source.start();
  network.run_for(des::SimTime::from_seconds(seconds));

  RunResult result;
  result.updates_per_second =
      static_cast<double>(receiver.tonemap_updates_sent()) / seconds;
  result.goodput_mbps =
      static_cast<double>(bytes) * 8.0 / seconds / 1e6;
  const phy::GilbertElliottChannel* channel =
      network.link_channel(sender.tei(), receiver.tei());
  result.fraction_bad =
      channel->fraction_bad(network.scheduler().now());
  return result;
}

}  // namespace

int main() {
  plc::bench::Harness harness("ext_tonemap_adaptation");
  std::cout << "=== E14: tone-map maintenance vs channel volatility "
               "===\n";
  std::cout << "(1 saturated link; Gilbert-Elliott channel, bad spells "
               "of 0.2 s at 40% PB error; 60 s per point)\n\n";

  util::TablePrinter table(
      {"mean good period (s)", "frac. time bad", "MME updates/s",
       "goodput, adapt ON (Mb/s)", "goodput, adapt OFF (Mb/s)"});
  for (const double mean_good_s : {5.0, 1.0, 0.5, 0.2}) {
    const RunResult on = run_case(mean_good_s, true, 60.0);
    const RunResult off = run_case(mean_good_s, false, 60.0);
    table.add_row({util::format_fixed(mean_good_s, 1),
                   util::format_fixed(on.fraction_bad, 3),
                   util::format_fixed(on.updates_per_second, 2),
                   util::format_fixed(on.goodput_mbps, 2),
                   util::format_fixed(off.goodput_mbps, 2)});
    const std::string prefix =
        "good" + std::to_string(static_cast<int>(mean_good_s * 10)) + ".";
    harness.scalar(prefix + "updates_per_second") = on.updates_per_second;
    harness.scalar(prefix + "goodput_on_mbps") = on.goodput_mbps;
    harness.scalar(prefix + "goodput_off_mbps") = off.goodput_mbps;
    harness.add_simulated_seconds(2 * 60.0);
  }
  table.print(std::cout);

  std::cout
      << "\nShape checks: the MME update rate rises as the channel "
         "degrades more often (the paper's \"arrival rate depends on the "
         "channel conditions\"). Adaptation wins clearly on mostly-good "
         "channels (bad spells ride on robust profiles instead of mass "
         "retransmission) and *loses* on rapidly-switching channels, "
         "where the EWMA lags the channel and robust profiles linger "
         "into good periods — the classic rate-adaptation hysteresis "
         "trade-off, and a concrete reason vendors keep this algorithm "
         "proprietary and tuned (§4.1).\n";
  return harness.finish();
}
