// E9 (extended, ablation): what exactly does the deferral counter buy?
// Same Table 1 windows, three deferral policies:
//   - default d = [0 1 3 15] (the standard),
//   - deferral disabled (stations only climb stages on collisions —
//     802.11-like behaviour on 1901 windows),
//   - extra-aggressive d = [0 0 1 3].
// Collision probability and throughput per N, simulation + model.
#include <iostream>

#include "analysis/model_1901.hpp"
#include "bench_main.hpp"
#include "mac/config.hpp"
#include "sim/sim_1901.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace plc;
  bench::Harness harness("ext_deferral_ablation");

  mac::BackoffConfig standard = mac::BackoffConfig::ca0_ca1();
  mac::BackoffConfig no_dc = standard;
  no_dc.name = "no deferral";
  no_dc.dc.assign(no_dc.dc.size(), mac::kDeferralDisabled);
  mac::BackoffConfig aggressive = standard;
  aggressive.name = "aggressive";
  aggressive.dc = {0, 0, 1, 3};

  std::cout << "=== E9: deferral-counter ablation (Table 1 windows) ===\n";
  std::cout << "(collision probability / normalized throughput; sim 6e7 "
               "us per point)\n\n";

  util::TablePrinter table({"N", "default cp", "no-dc cp", "aggr cp",
                            "default thr", "no-dc thr", "aggr thr",
                            "model default cp", "model no-dc cp"});
  for (const int n : {2, 3, 5, 10, 20, 30}) {
    const auto def = sim::sim_1901(n, 6e7, 2920.64, 2542.64, 2050.0,
                                   standard.cw, standard.dc, 0xE9);
    const auto off = sim::sim_1901(n, 6e7, 2920.64, 2542.64, 2050.0,
                                   no_dc.cw, no_dc.dc, 0xE9);
    const auto agg = sim::sim_1901(n, 6e7, 2920.64, 2542.64, 2050.0,
                                   aggressive.cw, aggressive.dc, 0xE9);
    const auto model_def = analysis::solve_1901(n, standard);
    const auto model_off = analysis::solve_1901(n, no_dc);
    table.add_row({std::to_string(n),
                   util::format_fixed(def.collision_probability, 4),
                   util::format_fixed(off.collision_probability, 4),
                   util::format_fixed(agg.collision_probability, 4),
                   util::format_fixed(def.normalized_throughput, 4),
                   util::format_fixed(off.normalized_throughput, 4),
                   util::format_fixed(agg.normalized_throughput, 4),
                   util::format_fixed(model_def.gamma, 4),
                   util::format_fixed(model_off.gamma, 4)});
    const std::string prefix = "n" + std::to_string(n) + ".";
    harness.scalar(prefix + "default_cp") = def.collision_probability;
    harness.scalar(prefix + "no_dc_cp") = off.collision_probability;
    harness.scalar(prefix + "default_thr") = def.normalized_throughput;
    harness.scalar(prefix + "no_dc_thr") = off.normalized_throughput;
    harness.add_simulated_seconds(3 * 60.0);
  }
  table.print(std::cout);

  std::cout << "\nShape checks: without the deferral counter, collisions "
               "grow much faster with N (stations only react *after* "
               "colliding) and throughput falls behind the default at "
               "large N; the aggressive policy trades extra deferrals "
               "for even fewer collisions.\n";
  return harness.finish();
}
